"""Backend core model: execution-port contention and FU utilization.

Broadwell and Cascade Lake both expose eight "functional units" in the
paper's Fig 10 terminology: four ALU-capable ports (two of which start
FMAs), two load ports, two store ports. The model bins the synthesized
micro-ops onto those ports; the busiest port class sets the
execution-limited cycle count, and a binomial occupancy approximation
produces the Fig 10 (bottom) FU-usage histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.hw.platform import CpuSpec
from repro.uarch.constants import UarchConstants
from repro.uarch.synth import InstructionMix

__all__ = ["BackendModel", "BackendProfile"]


@dataclass
class BackendProfile:
    #: Cycles needed by the busiest execution resource.
    execution_cycles: float = 0.0
    #: Cycles the issue stage alone would need (uops / issue width).
    issue_cycles: float = 0.0
    #: max(0, execution - issue): stall cycles charged to the core.
    core_bound_cycles: float = 0.0
    #: Average ports busy per execution cycle (0..8).
    avg_ports_busy: float = 0.0
    #: P(cycle uses 0 / 1-2 / 3+ of the 8 units).
    ports_0_fraction: float = 0.0
    ports_1_2_fraction: float = 0.0
    ports_3_plus_fraction: float = 0.0
    #: Total port-bound uops (set by BackendModel for the histogram).
    _port_uops: float = 0.0


class BackendModel:
    def __init__(self, spec: CpuSpec, constants: UarchConstants) -> None:
        self.spec = spec
        self.constants = constants

    def profile(self, mix: InstructionMix) -> BackendProfile:
        spec, c = self.spec, self.constants

        fma_uops = mix.vector_flop_instructions * c.uops_per_instruction
        scalar_alu_uops = (
            mix.scalar_flop_instructions
            + mix.bookkeeping_instructions
            + mix.branch_instructions
        ) * c.uops_per_instruction
        load_uops = mix.load_instructions * c.uops_per_instruction
        store_uops = mix.store_instructions * c.uops_per_instruction
        total_uops = fma_uops + scalar_alu_uops + load_uops + store_uops

        fma_cycles = fma_uops / (spec.fma_ports * c.fma_port_efficiency)
        # Scalar ALU work can also use the FMA-capable ports, but the
        # vector work monopolizes them in hot loops; grant the scalar
        # stream the non-FMA ALU ports plus leftover FMA-port slack.
        alu_cycles = scalar_alu_uops / (spec.alu_ports * c.alu_port_efficiency)
        load_cycles = load_uops / spec.load_ports
        store_cycles = store_uops / spec.store_ports

        execution_cycles = max(fma_cycles + alu_cycles * 0.5, alu_cycles, load_cycles, store_cycles)
        issue_cycles = total_uops / spec.issue_width
        execution_cycles = max(execution_cycles, issue_cycles)

        profile = BackendProfile(
            execution_cycles=execution_cycles,
            issue_cycles=issue_cycles,
            core_bound_cycles=max(0.0, execution_cycles - issue_cycles),
        )
        profile._port_uops = fma_uops + scalar_alu_uops + load_uops + store_uops
        return profile

    def port_histogram(self, profile: BackendProfile, total_cycles: float) -> None:
        """Binomial approximation of per-cycle port occupancy (Fig 10).

        Measured over *all* of the op's cycles: stall cycles have idle
        ports, which is why memory-bound models show low FU usage while
        the big-FC models keep 3+ of 8 units busy half the time.
        """
        num_units = self.spec.alu_ports + self.spec.load_ports + self.spec.store_ports
        cycles = max(total_cycles, 1e-9)
        mean_busy = min(float(num_units), profile._port_uops / cycles)
        profile.avg_ports_busy = mean_busy
        p = mean_busy / num_units

        def pmf(k: int) -> float:
            return math.comb(num_units, k) * p**k * (1 - p) ** (num_units - k)

        p0 = pmf(0)
        p12 = pmf(1) + pmf(2)
        profile.ports_0_fraction = p0
        profile.ports_1_2_fraction = p12
        profile.ports_3_plus_fraction = max(0.0, 1.0 - p0 - p12)
