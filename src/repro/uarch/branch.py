"""Branch-prediction model.

Mispredict rate per branch is ``entropy * (1 - predictor_quality)``:
perfectly regular loop branches (entropy ~0) never mispredict on either
machine; data-dependent branches (embedding-lookup index handling,
attention control flow) mispredict in proportion to how much of their
entropy the predictor cannot capture. Cascade Lake's Skylake-class
predictor (higher ``predictor_quality``, lower flush penalty) is what
collapses bad speculation between Fig 8's top and bottom panels and
drives Fig 15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.platform import CpuSpec
from repro.ops.workload import OpWorkload
from repro.uarch.constants import UarchConstants

__all__ = ["BranchModel", "BranchProfile"]


@dataclass
class BranchProfile:
    branches: float = 0.0
    mispredicts: float = 0.0
    #: Pipeline cycles lost to wrong-path execution + recovery.
    bad_speculation_cycles: float = 0.0


class BranchModel:
    def __init__(self, spec: CpuSpec, constants: UarchConstants) -> None:
        self.spec = spec
        self.constants = constants

    def mispredict_rate(self, entropy: float) -> float:
        """Per-branch mispredict probability for a given entropy."""
        if not 0.0 <= entropy <= 1.0:
            raise ValueError("branch entropy must lie in [0, 1]")
        return entropy * (1.0 - self.spec.predictor_quality)

    def profile(self, workload: OpWorkload) -> BranchProfile:
        branches = float(workload.branches)
        mispredicts = branches * self.mispredict_rate(workload.branch_entropy)
        wasted_cycles = (
            mispredicts
            * self.spec.branch_penalty
            * self.constants.badspec_slot_fraction
        )
        return BranchProfile(
            branches=branches,
            mispredicts=mispredicts,
            bad_speculation_cycles=wasted_cycles,
        )
