"""Cache simulation substrate.

Two layers:

* :class:`SetAssociativeCache` / :class:`CacheHierarchy` — a
  trace-driven, LRU, set-associative simulator supporting the inclusive
  (Broadwell) and exclusive (Cascade Lake) L2/L3 policies of Table II.
  Used to *validate* the analytical model on sampled embedding-lookup
  traces and directly by tests.
* :class:`AnalyticalHierarchy` — the closed-form residency model the
  pipeline fast path uses: given a stream's footprint, pattern, and
  locality it returns the distribution of accesses over hit levels.
  Closed form keeps full 8-model x 8-batch x 4-platform sweeps under a
  second; the trace-driven simulator exists to show the closed form is
  honest (see ``tests/test_caches.py`` cross-validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


from repro.hw.platform import CpuSpec
from repro.ops.workload import MemoryStream, RANDOM

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "AnalyticalHierarchy",
    "LevelAccesses",
]

LINE_BYTES = 64


class SetAssociativeCache:
    """LRU set-associative cache over 64-byte lines."""

    def __init__(self, capacity_bytes: int, ways: int = 8) -> None:
        if capacity_bytes < LINE_BYTES * ways:
            raise ValueError("cache too small for its associativity")
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (LINE_BYTES * ways)
        # sets[i] is an ordered list of line tags, most recent last.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // LINE_BYTES
        return line % self.num_sets, line

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit. Fills on miss."""
        set_idx, tag = self._locate(address)
        lines = self._sets[set_idx]
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(address)
        return False

    def probe(self, address: int) -> bool:
        """Check presence without updating state."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def insert(self, address: int) -> Optional[int]:
        """Fill a line; returns the evicted line's base address, if any."""
        set_idx, tag = self._locate(address)
        lines = self._sets[set_idx]
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            return None
        victim = None
        if len(lines) >= self.ways:
            victim = lines.pop(0) * LINE_BYTES
        lines.append(tag)
        return victim

    def invalidate(self, address: int) -> bool:
        set_idx, tag = self._locate(address)
        lines = self._sets[set_idx]
        if tag in lines:
            lines.remove(tag)
            return True
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """Three-level hierarchy with inclusive or exclusive L2/L3.

    * **Inclusive** (Broadwell): fills propagate into every level; an
      L3 eviction back-invalidates inner copies.
    * **Exclusive** (Cascade Lake): L3 is a victim cache — lines enter
      L3 only when evicted from L2, and an L3 hit moves the line back
      up (removing it from L3).
    """

    def __init__(
        self,
        l1_bytes: int,
        l2_bytes: int,
        l3_bytes: int,
        inclusive: bool,
        l1_ways: int = 8,
        l2_ways: int = 8,
        l3_ways: int = 16,
    ) -> None:
        self.l1 = SetAssociativeCache(l1_bytes, l1_ways)
        self.l2 = SetAssociativeCache(l2_bytes, l2_ways)
        self.l3 = SetAssociativeCache(l3_bytes, l3_ways)
        self.inclusive = inclusive
        self.dram_accesses = 0

    @classmethod
    def for_cpu(cls, spec: CpuSpec) -> "CacheHierarchy":
        return cls(
            spec.l1d_kb * 1024,
            spec.l2_kb * 1024,
            int(spec.l3_mb * 1024 * 1024),
            inclusive=spec.cache_inclusive,
        )

    def _fill_l2(self, address: int) -> None:
        """Fill L2; under the exclusive policy the victim spills to L3."""
        victim = self.l2.insert(address)
        if victim is not None:
            if self.inclusive:
                # Inclusive L3 already holds the line; nothing to do.
                pass
            else:
                self.l3.insert(victim)

    def access(self, address: int) -> str:
        """Touch an address; returns the level that served it."""
        if self.l1.access(address):
            return "l1"
        # L1 access() above already filled L1 on miss.
        if self.l2.probe(address):
            self.l2.access(address)  # refresh LRU
            return "l2"
        if self.inclusive:
            if self.l3.probe(address):
                self.l3.access(address)
                self._fill_l2(address)
                return "l3"
            # DRAM fill: populate every level; back-invalidate inner
            # copies of any L3 victim to preserve inclusion.
            victim = self.l3.insert(address)
            if victim is not None:
                self.l2.invalidate(victim)
                self.l1.invalidate(victim)
            self._fill_l2(address)
            self.dram_accesses += 1
            return "dram"
        # Exclusive (victim) L3: a hit migrates the line back to L2 and
        # removes it from L3; the displaced L2 victim spills to L3.
        if self.l3.invalidate(address):
            self._fill_l2(address)
            return "l3"
        self._fill_l2(address)
        self.dram_accesses += 1
        return "dram"

    def run_trace(self, addresses: Iterable[int]) -> Dict[str, int]:
        counts = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
        for addr in addresses:
            counts[self.access(int(addr))] += 1
        return counts


@dataclass(frozen=True)
class LevelAccesses:
    """How one stream's accesses distribute over the hierarchy."""

    l1: float = 0.0
    l2: float = 0.0
    l3: float = 0.0
    dram: float = 0.0

    @property
    def total(self) -> float:
        return self.l1 + self.l2 + self.l3 + self.dram

    def scaled(self, factor: float) -> "LevelAccesses":
        return LevelAccesses(
            self.l1 * factor, self.l2 * factor, self.l3 * factor, self.dram * factor
        )


class AnalyticalHierarchy:
    """Closed-form steady-state hit-level model for memory streams."""

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self.l1_bytes = spec.l1d_kb * 1024
        self.l2_bytes = spec.l2_kb * 1024
        self.l3_bytes = int(spec.l3_effective_kb * 1024)

    def classify(self, stream: MemoryStream) -> LevelAccesses:
        """Distribute a stream's accesses across serving levels."""
        if stream.accesses == 0:
            return LevelAccesses()
        if stream.pattern == RANDOM:
            return self._classify_random(stream)
        return self._classify_sequential(stream)

    def _residence_fractions(self, footprint: int) -> Dict[str, float]:
        """Fraction of a uniformly-touched footprint resident per level."""
        fractions: Dict[str, float] = {}
        remaining = 1.0
        for name, capacity in (
            ("l1", self.l1_bytes),
            ("l2", self.l2_bytes),
            ("l3", self.l3_bytes),
        ):
            if footprint <= 0:
                share = remaining
            else:
                share = min(remaining, capacity / footprint)
            fractions[name] = share
            remaining -= share
            if remaining <= 0:
                remaining = 0.0
        fractions["dram"] = remaining
        return fractions

    def _classify_random(self, stream: MemoryStream) -> LevelAccesses:
        # A random gather over a footprint: the resident fraction of the
        # footprint (under LRU, roughly the capacity ratio) hits; the
        # rest go to DRAM. Zipf locality concentrates extra hits in L2/L3.
        frac = self._residence_fractions(stream.footprint_bytes)
        hot = stream.locality  # extra re-touch probability of hot rows
        l1 = stream.accesses * frac["l1"] * (1 - hot)
        l2 = stream.accesses * (frac["l2"] * (1 - hot) + hot * 0.35)
        l3 = stream.accesses * (frac["l3"] * (1 - hot) + hot * 0.65)
        dram = max(0.0, stream.accesses - l1 - l2 - l3)
        return LevelAccesses(l1, l2, l3, dram)

    def _classify_sequential(self, stream: MemoryStream) -> LevelAccesses:
        # Streaming data is served from the smallest level that holds
        # the whole footprint in steady state; locality expresses reuse
        # (e.g. a weight panel re-streamed every block row).
        footprint = stream.footprint_bytes
        if footprint <= self.l1_bytes:
            return LevelAccesses(l1=stream.accesses)
        if footprint <= self.l2_bytes:
            return LevelAccesses(
                l1=stream.accesses * stream.locality,
                l2=stream.accesses * (1 - stream.locality),
            )
        if footprint <= self.l3_bytes:
            return LevelAccesses(
                l2=stream.accesses * stream.locality,
                l3=stream.accesses * (1 - stream.locality),
            )
        # Bigger than LLC: first pass streams from DRAM; reuse passes
        # (locality) are served by the LLC.
        return LevelAccesses(
            l3=stream.accesses * stream.locality,
            dram=stream.accesses * (1 - stream.locality),
        )
