"""Calibration constants for the CPU microarchitecture model.

The pipeline model is mechanistic — stalls follow from instruction
streams, cache footprints, and platform specs — but mechanisms need
coefficients (how many cycles a DSB switch costs, how much of a
mispredict's penalty lands in wasted issue slots, ...). They are
centralized here, with the paper- or vendor-documented rationale, so
ablation benches can sweep them and tests can pin them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["UarchConstants", "DEFAULT_CONSTANTS"]


@dataclass(frozen=True)
class UarchConstants:
    #: Micro-op expansion of simple instructions (macro-fusion nets out
    #: close to 1; complex addressing adds a little).
    uops_per_instruction: float = 1.05

    #: Achievable fraction of peak FMA-port throughput in real GEMM
    #: inner loops (dependency chains, edge cases, prologue).
    fma_port_efficiency: float = 0.8

    #: Achievable fraction of peak scalar-ALU throughput.
    alu_port_efficiency: float = 0.85

    #: Instruction-count discount for AVX-512 VNNI's fused forms on
    #: FC-class kernels (paper Fig 11: retired instructions drop
    #: beyond the 2x lane-width effect).
    vnni_instruction_factor: float = 0.9

    #: Out-of-order latency hiding for cache hits: the fraction of a
    #: hit's latency that stalls retirement.
    l2_hit_visible_fraction: float = 0.25
    l3_hit_visible_fraction: float = 0.45
    dram_visible_fraction: float = 0.85

    #: Memory-level parallelism achieved by a random gather stream, as
    #: a fraction of the offcore request buffers, scaling with the
    #: number of independent lookups available.
    gather_mlp_base: float = 0.8

    #: Prefetcher coverage of sequential streams (fraction of misses
    #: hidden entirely).
    prefetch_coverage: float = 0.85

    #: Visible fraction of L2/L3 streaming-bandwidth time (the rest
    #: overlaps with compute under double-buffered blocking).
    l2_stream_visible_fraction: float = 0.25
    l3_stream_visible_fraction: float = 0.75

    #: Machine-code bytes per static micro-op (DSB/L1i sizing).
    code_bytes_per_uop: float = 4.0

    #: Framework/runtime code resident alongside kernels (operator
    #: dispatch, allocator, libm) competing for L1i, in bytes.
    framework_code_bytes: int = 24 * 1024

    #: L1i cache lines re-missed per code-region entry once the hot
    #: code footprint exceeds L1i (dispatch path + evicted kernel
    #: prologue; drives Fig 12).
    icache_lines_per_entry: float = 64.0

    #: Cycles of frontend latency per L1i miss (hits L2).
    icache_miss_penalty: float = 14.0

    #: Dispatch instructions executed per code-region entry (framework
    #: sub-kernel dispatch; full operator dispatch is heavier but rare).
    dispatch_instructions_per_entry: float = 100.0

    #: Extra L1i lines thrashed per region entry beyond the region's
    #: own leading lines (shared library / dispatch-path conflicts).
    icache_thrash_lines: float = 8.0

    #: Cycles of DSB-delivery disturbance per (taken) branch in
    #: DSB-resident code, and per mispredict (refill).
    dsb_branch_bubble: float = 0.45
    dsb_mispredict_refill: float = 3.0

    #: Legacy-decoder (MITE) fetch-window break per taken branch, cycles.
    mite_branch_stall: float = 0.5

    #: Fraction of the mispredict flush penalty that lands in wasted
    #: pipeline slots (the rest overlaps with useful work).
    badspec_slot_fraction: float = 0.6

    #: CPU-side framework dispatch overhead per operator node, us.
    cpu_dispatch_us: float = 4.0

    #: Host-side input staging throughput (data loading on CPU), GB/s.
    host_staging_gbps: float = 20.0

    #: Fixed host-side data-load latency per input tensor, us.
    host_staging_latency_us: float = 0.5

    #: DRAM occupancy above which Intel classifies stalls as bandwidth
    #: congestion rather than latency (Fig 14's 70 % rule).
    dram_congestion_threshold: float = 0.7

    def with_overrides(self, **kwargs) -> "UarchConstants":
        return replace(self, **kwargs)


DEFAULT_CONSTANTS = UarchConstants()
