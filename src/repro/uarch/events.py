"""PMU-style event counters.

The paper reads these from hardware performance counters (TopDown via
perf); our pipeline model synthesizes the same counter set so the
analysis layer (:mod:`repro.core`) is written exactly as if against
PMU data.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["PmuEvents"]


@dataclass
class PmuEvents:
    """Counter values accumulated over one profiled region."""

    cycles: float = 0.0
    instructions: float = 0.0
    uops_retired: float = 0.0
    avx_instructions: float = 0.0

    # Branch unit
    branch_instructions: float = 0.0
    branch_mispredicts: float = 0.0

    # Frontend
    icache_misses: float = 0.0
    dsb_uops: float = 0.0
    mite_uops: float = 0.0
    dsb_limited_cycles: float = 0.0
    mite_limited_cycles: float = 0.0
    frontend_latency_cycles: float = 0.0
    frontend_bandwidth_cycles: float = 0.0

    # Backend
    core_bound_cycles: float = 0.0
    memory_bound_cycles: float = 0.0
    bad_speculation_cycles: float = 0.0

    # Memory hierarchy (data side)
    l1d_accesses: float = 0.0
    l2_accesses: float = 0.0
    l3_accesses: float = 0.0
    dram_accesses: float = 0.0
    dram_bytes: float = 0.0
    dram_congested_cycles: float = 0.0

    # Execution-port occupancy histogram: fraction-of-cycles buckets
    # {0 units, 1-2 units, 3+ units} weighted by this region's cycles.
    port_cycles_0: float = 0.0
    port_cycles_1_2: float = 0.0
    port_cycles_3_plus: float = 0.0

    def merge(self, other: "PmuEvents") -> "PmuEvents":
        """Accumulate another region's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    # -- derived metrics ----------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def i_mpki(self) -> float:
        """L1 instruction-cache misses per kilo-instruction (Fig 12)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.icache_misses / self.instructions

    @property
    def branch_mpki(self) -> float:
        """Branch mispredicts per kilo-instruction (Fig 15)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def avx_fraction(self) -> float:
        """AVX share of retired instructions (Fig 9)."""
        if not self.instructions:
            return 0.0
        return self.avx_instructions / self.instructions

    @property
    def dram_congested_fraction(self) -> float:
        """Share of cycles under DRAM bandwidth congestion (Fig 14)."""
        if not self.cycles:
            return 0.0
        return self.dram_congested_cycles / self.cycles

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
