"""Frontend model: L1 instruction cache and the DSB/MITE decoders.

Mechanisms reproduced (paper Section VI-B #3/#4, Figs 12-13):

* **Instruction-cache latency.** Each operator contributes a static
  code region; framework dispatch code competes for the same L1i. When
  the hot code footprint overflows L1i, every *entry* into a
  non-resident region (operator dispatch, per-lookup local activation
  unit, per-timestep recurrent sub-kernel) re-misses its leading lines.
  DIN's ~750 unique local-activation regions are the pathological case.
* **Decoder bandwidth.** Hot regions are cached as micro-ops in the
  DSB (1.5k uops); regions that do not fit decode through the legacy
  MITE pipeline at lower effective width. DSB delivery itself degrades
  with taken-branch redirects and mispredict refills — the
  embedding-dominated models' signature (Fig 13: DSB-limited >>
  MITE-limited for RM1/RM2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hw.platform import CpuSpec
from repro.uarch.constants import UarchConstants

__all__ = ["CodeRegion", "FrontendProfile", "FrontendModel"]


@dataclass
class CodeRegion:
    """Static + dynamic footprint of one operator node's code."""

    name: str
    code_bytes: float
    #: Distinct sub-regions with unique operand references.
    unique_blocks: int
    #: Times the region is entered per graph execution (operator
    #: dispatches / unrolled sub-kernel invocations).
    entries: float
    instructions: float
    uops: float
    branches: float
    mispredicts: float
    #: Data-dependence of the region's branches (0..1); irregular
    #: branches disturb DSB delivery more than loop back-edges.
    branch_entropy: float = 0.05

    @property
    def static_uops(self) -> float:
        return self.code_bytes / 4.0  # ~4 code bytes per uop

    @property
    def hotness(self) -> float:
        """Dynamic instructions per static code byte."""
        return self.instructions / max(self.code_bytes, 1.0)


@dataclass
class FrontendProfile:
    dsb_resident: bool = False
    l1i_resident: bool = False
    icache_misses: float = 0.0
    dsb_uops: float = 0.0
    mite_uops: float = 0.0
    #: Stall cycles split by root cause.
    latency_cycles: float = 0.0  # i-cache misses
    dsb_limited_cycles: float = 0.0
    mite_limited_cycles: float = 0.0
    #: Extra dispatch instructions charged to this region's entries.
    dispatch_instructions: float = 0.0

    @property
    def bandwidth_cycles(self) -> float:
        return self.dsb_limited_cycles + self.mite_limited_cycles

    @property
    def total_cycles(self) -> float:
        return self.latency_cycles + self.bandwidth_cycles


class FrontendModel:
    def __init__(self, spec: CpuSpec, constants: UarchConstants) -> None:
        self.spec = spec
        self.constants = constants

    def analyze(self, regions: Sequence[CodeRegion]) -> Dict[str, FrontendProfile]:
        """Whole-graph frontend analysis.

        Capacity (DSB uops, L1i bytes) is granted to regions in
        hotness order — the replacement-policy steady state — then
        per-region stalls follow from residency.
        """
        spec, consts = self.spec, self.constants
        profiles: Dict[str, FrontendProfile] = {r.name: FrontendProfile() for r in regions}

        by_hotness = sorted(regions, key=lambda r: r.hotness, reverse=True)

        # --- DSB residency -------------------------------------------------
        # The DSB swaps between operators as the net executes; while one
        # operator's hot loop runs, it owns the DSB. A region therefore
        # decodes from the DSB iff its *own* loop fits the uop cache;
        # only monolithic unrolled regions (DIN's attention net) exceed
        # it and fall back to the legacy MITE pipeline.
        for region in regions:
            if region.static_uops <= spec.dsb_uops:
                profiles[region.name].dsb_resident = True

        # --- L1i residency -------------------------------------------------
        l1i_bytes = float(spec.l1i_kb * 1024)
        l1i_budget = l1i_bytes - consts.framework_code_bytes
        for region in by_hotness:
            if region.code_bytes <= l1i_budget:
                profiles[region.name].l1i_resident = True
                l1i_budget -= region.code_bytes

        # Conflict-thrash severity: how badly the non-resident code
        # oversubscribes L1i. Hundreds of unique regions (DIN) force a
        # full cache turnover between re-entries, so shared dispatch
        # code re-misses too.
        nonresident_code = sum(
            r.code_bytes for r in regions if not profiles[r.name].l1i_resident
        )
        thrash_factor = min(4.0, max(1.0, nonresident_code / l1i_bytes))

        for region in regions:
            profile = profiles[region.name]
            profile.dispatch_instructions = (
                region.entries * consts.dispatch_instructions_per_entry
            )

            # Instruction-cache behaviour: each entry into a
            # non-resident region re-misses its (per-block) leading
            # lines plus conflict lines in shared dispatch code.
            if not profile.l1i_resident:
                block_lines = min(
                    consts.icache_lines_per_entry,
                    region.code_bytes / max(region.unique_blocks, 1) / 64.0,
                )
                profile.icache_misses = region.entries * (
                    max(block_lines, 1.0)
                    + consts.icache_thrash_lines * thrash_factor
                )
                profile.latency_cycles = (
                    profile.icache_misses * consts.icache_miss_penalty
                )

            # Decoder behaviour.
            if profile.dsb_resident:
                profile.dsb_uops = region.uops
                # Taken/data-dependent branches break DSB delivery
                # windows; higher-entropy branches (embedding index
                # handling) disturb it more than loop back-edges.
                entropy_factor = 0.5 + 2.0 * region.branch_entropy
                profile.dsb_limited_cycles = (
                    region.branches * consts.dsb_branch_bubble * entropy_factor
                    + region.mispredicts * consts.dsb_mispredict_refill
                )
            else:
                profile.mite_uops = region.uops
                # Legacy decode: raw width roughly matches issue width,
                # so the visible MITE cost is the per-taken-branch
                # fetch-window break plus mispredict restarts (monotone
                # in every input, unlike a decode-minus-issue residual).
                profile.mite_limited_cycles = (
                    region.branches * consts.mite_branch_stall
                    + region.mispredicts * consts.dsb_mispredict_refill
                )
        return profiles
