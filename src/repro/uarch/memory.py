"""Data-side memory model: stall cycles, DRAM bandwidth and congestion.

Consumes the per-stream level classification from
:class:`~repro.uarch.caches.AnalyticalHierarchy` and produces

* visible memory stall cycles (out-of-order overlap, prefetching, and
  gather memory-level parallelism applied),
* DRAM traffic and a Little's-law occupancy estimate of the offcore
  request queue, from which the Intel "> 70 % occupancy = bandwidth
  congestion" rule of Fig 14 is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.platform import CpuSpec
from repro.ops.workload import MemoryStream, OpWorkload, RANDOM
from repro.uarch.caches import AnalyticalHierarchy
from repro.uarch.constants import UarchConstants

__all__ = ["MemoryModel", "MemoryProfile"]


@dataclass
class MemoryProfile:
    """Memory behaviour of one operator invocation."""

    stall_cycles: float = 0.0
    l1_accesses: float = 0.0
    l2_accesses: float = 0.0
    l3_accesses: float = 0.0
    dram_accesses: float = 0.0
    dram_bytes: float = 0.0
    #: Estimated offcore-queue occupancy in [0, 1] while this op runs.
    dram_occupancy: float = 0.0
    #: Cycles lower-bounded by DRAM bandwidth alone.
    dram_bandwidth_cycles: float = 0.0


class MemoryModel:
    """Analytical data-memory behaviour for one CPU."""

    def __init__(self, spec: CpuSpec, constants: UarchConstants) -> None:
        self.spec = spec
        self.constants = constants
        self.hierarchy = AnalyticalHierarchy(spec)

    def gather_mlp(self, stream: MemoryStream) -> float:
        """Memory-level parallelism a random gather stream achieves.

        More independent lookups per request window expose more
        overlap, saturating at the offcore request-buffer depth — this
        is what separates RM2 (120 lookups/table) from RM1 (80) in the
        Fig 14 occupancy analysis.
        """
        c = self.constants
        mlp = c.gather_mlp_base * float(np.sqrt(max(stream.parallelism, 1)))
        return float(min(max(mlp, 1.0), self.spec.max_offcore_requests))

    def profile(self, workload: OpWorkload) -> MemoryProfile:
        spec, c = self.spec, self.constants
        profile = MemoryProfile()
        latency_cycles = 0.0
        dram_latency_cycles = spec.dram_latency_ns * spec.frequency_ghz
        occupancy_weight = 0.0  # stall-cycle-weighted occupancy

        for stream in workload.streams:
            levels = self.hierarchy.classify(stream)
            profile.l1_accesses += levels.l1
            profile.l2_accesses += levels.l2
            profile.l3_accesses += levels.l3
            profile.dram_accesses += levels.dram
            profile.dram_bytes += levels.dram * stream.granule_bytes

            if stream.is_write:
                # Store buffers + write-combining hide store latency;
                # only DRAM bandwidth (counted below) matters.
                continue

            if stream.pattern == RANDOM:
                # Independent gathers overlap up to the offcore queue.
                mlp = self.gather_mlp(stream)
                stream_stall = (
                    levels.dram * dram_latency_cycles * c.dram_visible_fraction / mlp
                    + levels.l3
                    * spec.l3_latency
                    * c.l3_hit_visible_fraction
                    / min(mlp, 4.0)
                    + levels.l2 * spec.l2_latency * c.l2_hit_visible_fraction
                )
                latency_cycles += stream_stall
                # Occupancy while this stream's gathers are in flight.
                occupancy_weight += stream_stall * min(
                    1.0, mlp / spec.max_offcore_requests
                )
            else:
                # Prefetchers cover sequential miss latency; what
                # remains is cache/DRAM *bandwidth*: streaming a
                # footprint through L2/L3/DRAM cannot go faster than
                # the level's data path.
                uncovered = 1.0 - c.prefetch_coverage
                stream_stall = (
                    levels.dram
                    * dram_latency_cycles
                    * c.dram_visible_fraction
                    * uncovered
                )
                stream_stall += (
                    levels.l2 * stream.granule_bytes / spec.l2_bandwidth_bpc
                ) * c.l2_stream_visible_fraction
                stream_stall += (
                    levels.l3 * stream.granule_bytes / spec.l3_bandwidth_bpc
                ) * c.l3_stream_visible_fraction
                bytes_per_cycle = spec.dram_bandwidth_gbps / spec.frequency_ghz
                stream_stall += (
                    levels.dram * stream.granule_bytes / bytes_per_cycle
                ) * c.l3_stream_visible_fraction
                latency_cycles += stream_stall

        # Bandwidth floor: moving the DRAM bytes takes at least this long.
        bytes_per_cycle = spec.dram_bandwidth_gbps / spec.frequency_ghz
        profile.dram_bandwidth_cycles = profile.dram_bytes / max(bytes_per_cycle, 1e-9)
        profile.stall_cycles = max(latency_cycles, profile.dram_bandwidth_cycles)

        if profile.stall_cycles > 0:
            profile.dram_occupancy = min(
                1.0, occupancy_weight / profile.stall_cycles
            )
        return profile

    def congested_cycles(self, profile: MemoryProfile, op_cycles: float) -> float:
        """Cycles chargeable to DRAM-bandwidth congestion (Fig 14).

        Intel's rule: occupancy beyond 70 % of the offcore queue means
        bandwidth-congested; below, latency-bound. We charge the op's
        memory-stall share scaled by how far past the threshold its
        occupancy sits.
        """
        threshold = self.constants.dram_congestion_threshold
        if profile.dram_occupancy <= threshold:
            return 0.0
        overshoot = (profile.dram_occupancy - threshold) / (1.0 - threshold)
        return min(op_cycles, profile.stall_cycles) * overshoot
