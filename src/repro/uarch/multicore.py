"""Multi-core throughput scaling (extension beyond the paper's scope).

The paper characterizes single-threaded inference (its Section III
methodology). Production serving runs one inference stream per core;
the first-order departure from linear scaling is contention for the
shared resources: DRAM bandwidth and the last-level cache. This module
models both:

* per-core DRAM demand beyond ``bandwidth / cores`` serializes,
* the LLC capacity visible to each core shrinks as ``L3 / cores``,
  pushing formerly-LLC-resident working sets (DIN/NCF tables, RM3's
  weight stacks) out to DRAM.

This quantifies the "embedding models stop scaling first" intuition
that motivates near-memory processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.graph.graph import Graph
from repro.hw.platform import CpuSpec
from repro.uarch.constants import DEFAULT_CONSTANTS, UarchConstants
from repro.uarch.pipeline import CpuModel

__all__ = ["CoreScalingPoint", "MulticoreModel"]


@dataclass(frozen=True)
class CoreScalingPoint:
    cores: int
    #: Inferences/second aggregated over all cores.
    throughput: float
    #: Parallel efficiency vs. perfect linear scaling.
    efficiency: float
    #: Whether the socket's DRAM bandwidth is saturated at this count.
    bandwidth_saturated: bool


class MulticoreModel:
    """Throughput scaling of one model graph across a socket's cores."""

    def __init__(
        self, spec: CpuSpec, constants: Optional[UarchConstants] = None
    ) -> None:
        self.spec = spec
        self.constants = constants if constants is not None else DEFAULT_CONSTANTS

    def _single_core_profile(self, graph: Graph, cores: int):
        """Profile with the per-core LLC share at this occupancy."""
        shared_l3 = self.spec.l3_mb / cores
        spec = self.spec.with_overrides(l3_mb=max(shared_l3, 1.0))
        return CpuModel(spec, self.constants).profile_graph(graph)

    def scaling_curve(
        self, graph: Graph, core_counts: Optional[List[int]] = None
    ) -> List[CoreScalingPoint]:
        if core_counts is None:
            core_counts = [1, 2, 4, 8, self.spec.cores]
        points = []
        for cores in core_counts:
            if cores < 1 or cores > self.spec.cores:
                raise ValueError(f"core count {cores} outside socket (1..{self.spec.cores})")
            profile = self._single_core_profile(graph, cores)
            per_core_seconds = profile.compute_seconds
            # Aggregate DRAM demand across cores vs the socket's pins.
            dram_bytes = profile.events.dram_bytes
            demand_gbps = cores * dram_bytes / max(per_core_seconds, 1e-12) / 1e9
            capacity_gbps = self.spec.dram_bandwidth_gbps
            saturated = demand_gbps > capacity_gbps
            if saturated:
                # Memory phases serialize: stretch each inference by the
                # oversubscription factor applied to its DRAM time.
                dram_seconds = dram_bytes / (capacity_gbps / cores * 1e9)
                baseline_dram_seconds = dram_bytes / (capacity_gbps * 1e9)
                per_core_seconds += dram_seconds - baseline_dram_seconds
            throughput = cores / per_core_seconds
            points.append(
                CoreScalingPoint(
                    cores=cores,
                    throughput=throughput,
                    efficiency=1.0,  # filled below
                    bandwidth_saturated=saturated,
                )
            )
        base = points[0].throughput / points[0].cores
        return [
            CoreScalingPoint(
                cores=p.cores,
                throughput=p.throughput,
                efficiency=p.throughput / (p.cores * base),
                bandwidth_saturated=p.bandwidth_saturated,
            )
            for p in points
        ]
