"""Near-memory processing (NMP) what-if model.

The paper's Fig 14 finding — RM2 is DRAM-bandwidth congested — is the
motivation it cites for TensorDimm/RecNMP-style designs: execute the
gather-and-pool *inside* the memory system, so the host sees one pooled
vector per (sample, table) instead of every embedding row. This module
models that design point on top of the existing CPU pipeline:

* each random gather stream is executed rank-locally with
  ``rank_parallelism``-way concurrency at the DIMM's internal bandwidth
  advantage (``internal_bandwidth_factor`` — rank-level bandwidth is
  not serialized over the channel pins);
* the channel then carries only the pooled output,
  ``pooling_factor = lookups`` fewer bytes;
* everything else (FC stacks, frontend, branches) is unchanged.

``NmpSystem.speedup`` reproduces the 1.5-4x gains the NMP papers
report for embedding-dominated models, and ~1x for FC-dominated ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Optional


from repro.graph.graph import Graph
from repro.hw.platform import CpuSpec
from repro.ops.workload import OpWorkload, RANDOM
from repro.uarch.constants import DEFAULT_CONSTANTS, UarchConstants
from repro.uarch.memory import MemoryModel, MemoryProfile
from repro.uarch.pipeline import CpuGraphProfile, CpuModel

__all__ = ["NmpConfig", "NmpSystem"]


@dataclass(frozen=True)
class NmpConfig:
    """A TensorDimm/RecNMP-style memory system."""

    #: Concurrent rank-local gather engines across the DIMM population.
    rank_parallelism: int = 4
    #: Rank-internal bandwidth relative to the channel's pin bandwidth.
    internal_bandwidth_factor: float = 2.0
    #: Fixed NMP command/launch latency per pooled output, ns.
    command_latency_ns: float = 40.0

    def __post_init__(self) -> None:
        if self.rank_parallelism < 1:
            raise ValueError("rank_parallelism must be >= 1")
        if self.internal_bandwidth_factor < 1.0:
            raise ValueError("internal bandwidth factor must be >= 1")


class _NmpMemoryModel(MemoryModel):
    """Memory model with gather-and-pool executed near memory."""

    def __init__(
        self, spec: CpuSpec, constants: UarchConstants, nmp: NmpConfig
    ) -> None:
        super().__init__(spec, constants)
        self.nmp = nmp

    def profile(self, workload: OpWorkload) -> MemoryProfile:
        gathers = [
            s
            for s in workload.streams
            if s.pattern == RANDOM and not s.is_write and s.parallelism > 1
        ]
        if not gathers:
            return super().profile(workload)

        # Host-visible traffic: pooled outputs only.
        host_streams = []
        for stream in workload.streams:
            if stream in gathers:
                pooled_accesses = max(1, stream.accesses // stream.parallelism)
                host_streams.append(
                    dc_replace(
                        stream,
                        accesses=pooled_accesses,
                        pattern=RANDOM,
                        parallelism=1,
                    )
                )
            else:
                host_streams.append(stream)
        host_profile = super().profile(
            dc_replace(workload, streams=tuple(host_streams))
        )

        # Near-memory execution time of the gathers themselves.
        spec, nmp = self.spec, self.nmp
        dram_latency_cycles = spec.dram_latency_ns * spec.frequency_ghz
        nmp_cycles = 0.0
        for stream in gathers:
            per_engine = stream.accesses / nmp.rank_parallelism
            mlp = self.gather_mlp(stream)
            latency_cycles = (
                per_engine * dram_latency_cycles / mlp
                / nmp.internal_bandwidth_factor
            )
            pooled = max(1, stream.accesses // stream.parallelism)
            command_cycles = (
                pooled * nmp.command_latency_ns * spec.frequency_ghz
            )
            nmp_cycles += latency_cycles + command_cycles
        # Host-side stalls and NMP execution overlap; the slower wins.
        host_profile.stall_cycles = max(host_profile.stall_cycles, nmp_cycles)
        # The channel no longer carries row traffic: congestion clears.
        host_profile.dram_occupancy = min(
            host_profile.dram_occupancy,
            nmp_cycles / max(host_profile.stall_cycles, 1e-9) * 0.5,
        )
        return host_profile


class NmpSystem:
    """A CPU whose memory system executes embedding pooling near memory."""

    def __init__(
        self,
        spec: CpuSpec,
        nmp: Optional[NmpConfig] = None,
        constants: Optional[UarchConstants] = None,
    ) -> None:
        self.spec = spec
        self.nmp = nmp if nmp is not None else NmpConfig()
        self.constants = constants if constants is not None else DEFAULT_CONSTANTS
        self.baseline = CpuModel(spec, self.constants)
        self.cpu = CpuModel(spec, self.constants)
        self.cpu.memory_model = _NmpMemoryModel(spec, self.constants, self.nmp)

    def profile_graph(self, graph: Graph, input_bytes: int = 0) -> CpuGraphProfile:
        return self.cpu.profile_graph(graph, input_bytes=input_bytes)

    def speedup(self, graph: Graph) -> float:
        """End-to-end model-computation speedup over the plain CPU."""
        base = self.baseline.profile_graph(graph).compute_seconds
        nmp = self.profile_graph(graph).compute_seconds
        return base / nmp if nmp > 0 else float("inf")
