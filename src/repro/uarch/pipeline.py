"""The CPU pipeline model: graphs -> cycles + PMU events.

``CpuModel.profile_graph`` runs the whole analytical stack for one
operator graph on one CPU:

1. synthesize each node's instruction mix (:mod:`repro.uarch.synth`),
2. model branches (:mod:`repro.uarch.branch`), the backend ports
   (:mod:`repro.uarch.backend`), and data memory
   (:mod:`repro.uarch.memory`) per node,
3. model the shared frontend (L1i + DSB/MITE) across all nodes
   (:mod:`repro.uarch.frontend`),
4. assemble per-node cycle counts with an additive stall model —
   ``cycles = execution + memory-stall + frontend-stall + bad-spec`` —
   which is exactly the decomposition TopDown accounting inverts.

The result carries both wall-clock (cycles / frequency + dispatch
overheads) and the full PMU event set every figure of Section VI reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import telemetry
from repro.graph.graph import Graph
from repro.hw.platform import CpuSpec
from repro.ops.workload import OpWorkload
from repro.uarch.backend import BackendModel
from repro.uarch.branch import BranchModel
from repro.uarch.constants import DEFAULT_CONSTANTS, UarchConstants
from repro.uarch.events import PmuEvents
from repro.uarch.frontend import CodeRegion, FrontendModel
from repro.uarch.memory import MemoryModel
from repro.uarch.synth import synthesize

__all__ = ["CpuOpProfile", "CpuGraphProfile", "CpuModel"]


@dataclass
class CpuOpProfile:
    """Cycle/event accounting for one graph node on one CPU."""

    node_name: str
    op_kind: str
    cycles: float
    execution_cycles: float
    memory_stall_cycles: float
    frontend_stall_cycles: float
    bad_speculation_cycles: float
    core_bound_cycles: float
    events: PmuEvents

    @property
    def time_seconds(self) -> float:
        # Filled by CpuModel (needs frequency); kept as attribute below.
        return self._time_seconds

    _time_seconds: float = 0.0


@dataclass
class CpuGraphProfile:
    """Whole-graph profile: per-op breakdown plus aggregate events."""

    platform: str
    graph_name: str
    op_profiles: List[CpuOpProfile]
    events: PmuEvents
    #: Model-computation time (cycles/frequency + per-op dispatch).
    compute_seconds: float
    #: Host-side input staging ("data loading"; included in the paper's
    #: end-to-end CPU numbers).
    data_load_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.data_load_seconds

    def time_by_kind(self) -> Dict[str, float]:
        """Seconds per operator kind (the Fig 6 breakdown)."""
        out: Dict[str, float] = {}
        for p in self.op_profiles:
            out[p.op_kind] = out.get(p.op_kind, 0.0) + p._time_seconds
        return out


class CpuModel:
    """Analytical single-thread inference model for one CPU spec."""

    def __init__(
        self, spec: CpuSpec, constants: Optional[UarchConstants] = None
    ) -> None:
        self.spec = spec
        self.constants = constants if constants is not None else DEFAULT_CONSTANTS
        self.branch_model = BranchModel(spec, self.constants)
        self.backend_model = BackendModel(spec, self.constants)
        self.memory_model = MemoryModel(spec, self.constants)
        self.frontend_model = FrontendModel(spec, self.constants)

    # -- public API ---------------------------------------------------------

    def profile_graph(self, graph: Graph, input_bytes: int = 0) -> CpuGraphProfile:
        nodes = graph.nodes
        workloads = []
        for node in nodes:
            input_specs = [graph.spec_of(s) for s in node.inputs]
            workloads.append(node.op.workload(input_specs))
        return self.profile_workloads(
            graph.name,
            [n.name for n in nodes],
            [n.kind for n in nodes],
            workloads,
            input_bytes=input_bytes,
        )

    def profile_workloads(
        self,
        graph_name: str,
        names: List[str],
        kinds: List[str],
        workloads: List[OpWorkload],
        input_bytes: int = 0,
    ) -> CpuGraphProfile:
        spec, c = self.spec, self.constants

        mixes = [synthesize(w, spec, c) for w in workloads]
        branch_profiles = [self.branch_model.profile(w) for w in workloads]
        backend_profiles = [self.backend_model.profile(m) for m in mixes]
        memory_profiles = [self.memory_model.profile(w) for w in workloads]

        regions = [
            CodeRegion(
                name=name,
                code_bytes=float(w.code_bytes),
                unique_blocks=w.unique_code_blocks,
                entries=float(w.effective_code_entries),
                instructions=m.total,
                uops=m.uops(c),
                branches=m.branch_instructions,
                mispredicts=bp.mispredicts,
                branch_entropy=w.branch_entropy,
            )
            for name, w, m, bp in zip(names, workloads, mixes, branch_profiles)
        ]
        frontend_profiles = self.frontend_model.analyze(regions)

        op_profiles: List[CpuOpProfile] = []
        total_events = PmuEvents()
        compute_seconds = 0.0

        for name, kind, w, m, bp, be, mem in zip(
            names, kinds, workloads, mixes, branch_profiles, backend_profiles,
            memory_profiles,
        ):
            fe = frontend_profiles[name]
            instructions = m.total + fe.dispatch_instructions
            uops = m.uops(c) + fe.dispatch_instructions * c.uops_per_instruction

            execution_cycles = max(
                be.execution_cycles,
                uops / spec.issue_width,
            )
            cycles = (
                execution_cycles
                + mem.stall_cycles
                + fe.total_cycles
                + bp.bad_speculation_cycles
            )
            self.backend_model.port_histogram(be, cycles)

            events = PmuEvents(
                cycles=cycles,
                instructions=instructions,
                uops_retired=uops,
                avx_instructions=m.avx_instructions,
                branch_instructions=m.branch_instructions,
                branch_mispredicts=bp.mispredicts,
                icache_misses=fe.icache_misses,
                dsb_uops=fe.dsb_uops,
                mite_uops=fe.mite_uops,
                dsb_limited_cycles=fe.dsb_limited_cycles,
                mite_limited_cycles=fe.mite_limited_cycles,
                frontend_latency_cycles=fe.latency_cycles,
                frontend_bandwidth_cycles=fe.bandwidth_cycles,
                core_bound_cycles=be.core_bound_cycles,
                memory_bound_cycles=mem.stall_cycles,
                bad_speculation_cycles=bp.bad_speculation_cycles,
                l1d_accesses=mem.l1_accesses,
                l2_accesses=mem.l2_accesses,
                l3_accesses=mem.l3_accesses,
                dram_accesses=mem.dram_accesses,
                dram_bytes=mem.dram_bytes,
                dram_congested_cycles=self.memory_model.congested_cycles(mem, cycles),
                port_cycles_0=be.ports_0_fraction * cycles,
                port_cycles_1_2=be.ports_1_2_fraction * cycles,
                port_cycles_3_plus=be.ports_3_plus_fraction * cycles,
            )

            seconds = cycles / (spec.frequency_ghz * 1e9)
            # Framework dispatch wall-clock per operator invocation.
            seconds += max(w.kernel_launches, 1) * c.cpu_dispatch_us * 1e-6 * 0.1
            seconds += c.cpu_dispatch_us * 1e-6

            profile = CpuOpProfile(
                node_name=name,
                op_kind=kind,
                cycles=cycles,
                execution_cycles=execution_cycles,
                memory_stall_cycles=mem.stall_cycles,
                frontend_stall_cycles=fe.total_cycles,
                bad_speculation_cycles=bp.bad_speculation_cycles,
                core_bound_cycles=be.core_bound_cycles,
                events=events,
            )
            profile._time_seconds = seconds
            op_profiles.append(profile)
            total_events.merge(events)
            compute_seconds += seconds

        data_load_seconds = (
            input_bytes / (c.host_staging_gbps * 1e9)
            + c.host_staging_latency_us * 1e-6
        )
        if telemetry.enabled():
            registry = telemetry.get_registry()
            labels = dict(platform=spec.microarchitecture, graph=graph_name)
            registry.counter("uarch.graphs_profiled", **labels).inc()
            registry.counter("uarch.ops_profiled", **labels).inc(len(op_profiles))
            registry.counter("uarch.cycles", **labels).inc(total_events.cycles)
            registry.counter(
                "uarch.instructions", **labels
            ).inc(total_events.instructions)
        return CpuGraphProfile(
            platform=spec.microarchitecture,
            graph_name=graph_name,
            op_profiles=op_profiles,
            events=total_events,
            compute_seconds=compute_seconds,
            data_load_seconds=data_load_seconds,
        )
