"""Instruction-stream synthesis: OpWorkload x CpuSpec -> instruction mix.

This is the reproduction's stand-in for the binary the compiler +
framework would actually emit: how many packed-SIMD instructions the
flops become at this machine's vector width, how many loads/stores the
memory streams become at this machine's load width, and the scalar and
branch bookkeeping around them. Fig 9 (AVX fraction) and Fig 11
(retired-instruction drop from AVX-512/VNNI) read directly off this
mix.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.hw.platform import CpuSpec
from repro.ops.workload import OpWorkload, RANDOM
from repro.uarch.constants import UarchConstants

__all__ = ["InstructionMix", "synthesize"]


@dataclass(frozen=True)
class InstructionMix:
    vector_flop_instructions: float
    scalar_flop_instructions: float
    vector_memory_instructions: float
    scalar_memory_instructions: float
    store_instructions: float
    branch_instructions: float
    bookkeeping_instructions: float

    @property
    def load_instructions(self) -> float:
        return self.vector_memory_instructions + self.scalar_memory_instructions

    @property
    def avx_instructions(self) -> float:
        """Packed-SIMD instructions (compute + memory)."""
        return self.vector_flop_instructions + self.vector_memory_instructions

    @property
    def total(self) -> float:
        return (
            self.vector_flop_instructions
            + self.scalar_flop_instructions
            + self.vector_memory_instructions
            + self.scalar_memory_instructions
            + self.store_instructions
            + self.branch_instructions
            + self.bookkeeping_instructions
        )

    def uops(self, constants: UarchConstants) -> float:
        return self.total * constants.uops_per_instruction


def synthesize(
    workload: OpWorkload, spec: CpuSpec, constants: UarchConstants
) -> InstructionMix:
    """Lower a hardware-neutral workload onto one CPU's ISA."""
    lanes = spec.simd_fp32_lanes
    flops_per_vector_inst = lanes * (2 if workload.uses_fma else 1)

    # AVX-512's masked operations let hand-tuned GEMM-class kernels
    # (the FMA-shaped workloads) vectorize residue that the 256-bit ISA
    # leaves scalar (loop epilogues, short rows); the long tail of
    # non-GEMM operators is not rewritten per ISA.
    scalar_fraction = 1.0 - workload.vector_fraction
    if workload.uses_fma:
        scalar_fraction *= 256.0 / spec.simd_width_bits
    vector_flops = workload.flops * (1.0 - scalar_fraction)
    scalar_flop_inst = float(workload.flops) * scalar_fraction

    vector_flop_inst = vector_flops / max(flops_per_vector_inst, 1)
    if spec.has_vnni and workload.uses_fma:
        # VNNI's fused forms shave additional instructions off
        # FC-class kernels (Fig 11).
        vector_flop_inst *= constants.vnni_instruction_factor

    simd_bytes = spec.simd_width_bits // 8
    vector_mem = 0.0
    scalar_mem = 0.0
    stores = 0.0
    for stream in workload.streams:
        if stream.is_write:
            stores += math.ceil(stream.total_bytes / simd_bytes)
        elif stream.pattern == RANDOM:
            # Each gathered granule needs its own (vector) loads; short
            # rows don't coalesce across granules.
            per_access = max(1, math.ceil(stream.granule_bytes / simd_bytes))
            vector_mem += stream.accesses * per_access
        else:
            vector_mem += stream.total_bytes / simd_bytes

    return InstructionMix(
        vector_flop_instructions=vector_flop_inst,
        scalar_flop_instructions=scalar_flop_inst,
        vector_memory_instructions=vector_mem,
        scalar_memory_instructions=scalar_mem,
        store_instructions=stores,
        branch_instructions=float(workload.branches),
        bookkeeping_instructions=float(workload.scalar_ops),
    )
