"""TopDown pipeline-slot accounting (Yasin 2014), from PMU events.

Level 1 splits every issue slot into **retiring**, **bad speculation**,
**frontend bound**, and **backend bound** (Fig 8). Level 2 splits
frontend into latency vs bandwidth (Figs 12-13), and backend into core
vs memory bound (Fig 10). The fractions always form a simplex —
enforced here and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.uarch.events import PmuEvents

__all__ = ["TopDownBreakdown", "topdown_from_events"]


@dataclass(frozen=True)
class TopDownBreakdown:
    """Slot fractions; level-1 sums to 1, each level-2 pair sums to its parent."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float

    frontend_latency: float
    frontend_bandwidth: float
    core_bound: float
    memory_bound: float

    @property
    def level1(self) -> Dict[str, float]:
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
        }

    def as_dict(self) -> Dict[str, float]:
        """Both hierarchy levels as one flat dict (run-ledger exchange form)."""
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
            "frontend_latency": self.frontend_latency,
            "frontend_bandwidth": self.frontend_bandwidth,
            "core_bound": self.core_bound,
            "memory_bound": self.memory_bound,
        }

    @property
    def core_to_memory_ratio(self) -> float:
        """Core:Memory backend-bound ratio (Fig 10 top)."""
        if self.memory_bound <= 0:
            return float("inf") if self.core_bound > 0 else 0.0
        return self.core_bound / self.memory_bound

    def validate(self) -> None:
        level1_sum = (
            self.retiring
            + self.bad_speculation
            + self.frontend_bound
            + self.backend_bound
        )
        if abs(level1_sum - 1.0) > 1e-6:
            raise ValueError(f"TopDown level 1 does not sum to 1: {level1_sum}")
        for value in self.level1.values():
            if value < -1e-9:
                raise ValueError("negative TopDown fraction")


def topdown_from_events(events: PmuEvents, issue_width: int = 4) -> TopDownBreakdown:
    """Assemble the TopDown hierarchy from synthesized PMU counters.

    Total slots are ``issue_width * cycles``. Retiring slots are the
    retired uops; bad-speculation, frontend, and backend slots follow
    from their respective stall-cycle counters. Any residual (from
    rounding in the additive model) is charged to backend, matching
    how real TopDown treats unattributed stalls.
    """
    if events.cycles <= 0:
        raise ValueError("cannot compute TopDown over zero cycles")
    total_slots = issue_width * events.cycles

    retiring = min(events.uops_retired, total_slots)
    bad_spec = events.bad_speculation_cycles * issue_width
    frontend = (
        events.frontend_latency_cycles + events.frontend_bandwidth_cycles
    ) * issue_width
    backend = (events.core_bound_cycles + events.memory_bound_cycles) * issue_width

    total = retiring + bad_spec + frontend + backend
    if total > total_slots:
        # Components over-subscribe (overlap in the additive model);
        # normalize proportionally.
        scale = total_slots / total
        retiring *= scale
        bad_spec *= scale
        frontend *= scale
        backend *= scale
    else:
        # Residual slots are unattributed backend stalls.
        backend += total_slots - total

    frontend_total = events.frontend_latency_cycles + events.frontend_bandwidth_cycles
    latency_share = (
        events.frontend_latency_cycles / frontend_total if frontend_total else 0.0
    )
    backend_split_total = events.core_bound_cycles + events.memory_bound_cycles
    core_share = (
        events.core_bound_cycles / backend_split_total if backend_split_total else 0.0
    )

    breakdown = TopDownBreakdown(
        retiring=retiring / total_slots,
        bad_speculation=bad_spec / total_slots,
        frontend_bound=frontend / total_slots,
        backend_bound=backend / total_slots,
        frontend_latency=(frontend / total_slots) * latency_share,
        frontend_bandwidth=(frontend / total_slots) * (1.0 - latency_share),
        core_bound=(backend / total_slots) * core_share,
        memory_bound=(backend / total_slots) * (1.0 - core_share),
    )
    breakdown.validate()
    return breakdown
