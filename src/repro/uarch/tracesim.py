"""Trace-driven embedding-locality studies.

The fast path classifies gather streams with the closed-form
:class:`~repro.uarch.caches.AnalyticalHierarchy`. This module is the
ground-truth side: it drives *actual* sampled index traces (Zipf or
uniform, straight from :mod:`repro.workloads`) through the
set-associative :class:`~repro.uarch.caches.CacheHierarchy` and reports
where lookups are served. Used to

* validate the analytical locality parameter against simulation
  (``tests/test_tracesim.py``),
* regenerate the embedding-locality bench
  (``benchmarks/bench_embedding_locality.py``) supporting the Fig 14
  analysis, and
* let users measure the cache behaviour of their own table/traffic
  configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hw.platform import CpuSpec
from repro.ops.workload import MemoryStream, RANDOM
from repro.uarch.caches import AnalyticalHierarchy, CacheHierarchy
from repro.workloads.distributions import IndexDistribution, ZipfIndices

__all__ = ["TraceStudyResult", "EmbeddingTraceStudy"]


@dataclass(frozen=True)
class TraceStudyResult:
    """Where one trace's lookups were served."""

    rows: int
    row_bytes: int
    lookups: int
    served: Dict[str, int]  # level -> lookup count

    @property
    def dram_rate(self) -> float:
        return self.served["dram"] / max(self.lookups, 1)

    @property
    def cache_rate(self) -> float:
        return 1.0 - self.dram_rate

    def fraction(self, level: str) -> float:
        return self.served[level] / max(self.lookups, 1)


class EmbeddingTraceStudy:
    """Simulate embedding-lookup traces against a CPU's cache hierarchy.

    Table capacity can be scaled (``capacity_scale``) so that studies of
    GB-sized production tables stay tractable: scaling the table and the
    LLC by the same factor preserves the capacity *ratio* that governs
    hit rates.
    """

    def __init__(
        self,
        spec: CpuSpec,
        distribution: Optional[IndexDistribution] = None,
        capacity_scale: float = 1.0,
        seed: int = 2020,
    ) -> None:
        if capacity_scale <= 0 or capacity_scale > 1:
            raise ValueError("capacity_scale must be in (0, 1]")
        self.spec = spec
        self.distribution = distribution if distribution is not None else ZipfIndices()
        self.capacity_scale = capacity_scale
        self._rng = np.random.default_rng(seed)

    def _hierarchy(self) -> CacheHierarchy:
        scale = self.capacity_scale
        return CacheHierarchy(
            l1_bytes=max(4096, int(self.spec.l1d_kb * 1024 * scale)),
            l2_bytes=max(8192, int(self.spec.l2_kb * 1024 * scale)),
            l3_bytes=max(16384, int(self.spec.l3_mb * 1024 * 1024 * scale)),
            inclusive=self.spec.cache_inclusive,
        )

    def run(
        self,
        rows: int,
        row_bytes: int,
        lookups: int,
        warmup_lookups: int = 0,
    ) -> TraceStudyResult:
        """Drive ``lookups`` sampled row accesses through the hierarchy."""
        if rows <= 0 or row_bytes <= 0 or lookups <= 0:
            raise ValueError("rows, row_bytes, lookups must be positive")
        effective_rows = max(1, int(rows * self.capacity_scale))
        hierarchy = self._hierarchy()
        lines_per_row = max(1, row_bytes // 64)

        def drive(n: int, count: bool) -> Dict[str, int]:
            counts = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
            indices = self.distribution.sample(self._rng, effective_rows, (n,))
            for idx in indices:
                base = int(idx) * row_bytes
                # A row occupies several lines; its first touch decides
                # the serving level, trailing lines ride the same fill.
                level = hierarchy.access(base)
                for line in range(1, lines_per_row):
                    hierarchy.access(base + line * 64)
                if count:
                    counts[level] += 1
            return counts

        if warmup_lookups:
            drive(warmup_lookups, count=False)
        served = drive(lookups, count=True)
        return TraceStudyResult(
            rows=rows, row_bytes=row_bytes, lookups=lookups, served=served
        )

    def analytical_prediction(
        self, rows: int, row_bytes: int, lookups: int
    ) -> Dict[str, float]:
        """Closed-form counterpart of :meth:`run` for cross-validation."""
        stream = MemoryStream(
            footprint_bytes=rows * row_bytes,
            accesses=lookups,
            granule_bytes=row_bytes,
            pattern=RANDOM,
            locality=self.distribution.expected_locality(rows),
            parallelism=lookups,
        )
        levels = AnalyticalHierarchy(self.spec).classify(stream)
        return {
            "l1": levels.l1 / lookups,
            "l2": levels.l2 / lookups,
            "l3": levels.l3 / lookups,
            "dram": levels.dram / lookups,
        }

    def sweep_table_sizes(
        self,
        row_counts: Sequence[int],
        row_bytes: int = 128,
        lookups: int = 4000,
        warmup_lookups: int = 4000,
    ) -> List[TraceStudyResult]:
        """DRAM-rate curve across table sizes (the Fig 14 driver)."""
        return [
            self.run(rows, row_bytes, lookups, warmup_lookups)
            for rows in row_counts
        ]
