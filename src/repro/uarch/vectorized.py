"""Vectorized CPU pipeline evaluation over stacked workload tables.

Evaluates :mod:`repro.uarch`'s whole analytical stack — synthesis,
branch, backend, memory, frontend, assembly — for *all* sweep cells of
one CPU at once, on ``(cells, nodes)`` float64 arrays.

Bit-identity contract: every arithmetic expression here mirrors the
scalar models (:mod:`~repro.uarch.synth`, :mod:`~repro.uarch.branch`,
:mod:`~repro.uarch.backend`, :mod:`~repro.uarch.memory`,
:mod:`~repro.uarch.pipeline`) term for term, preserving association
order, so IEEE-754 float64 results match the scalar path bit for bit
(pinned in ``tests/test_specmode.py``). Two pieces intentionally stay
on the original scalar code because their arithmetic is not
reproducible with vectorized primitives:

* the shared frontend (:meth:`~repro.uarch.frontend.FrontendModel.analyze`)
  — a sorted greedy capacity budget across the whole graph — runs once
  per cell on :class:`~repro.uarch.frontend.CodeRegion` objects rebuilt
  from the table (cheap: one call per cell, not per node);
* the port-occupancy binomial (``p**k`` — NumPy's pow is not bit-equal
  to CPython's for float bases) runs as a per-node Python loop
  replicating :meth:`~repro.uarch.backend.BackendModel.port_histogram`.

Per-node accumulations (stream loops, event totals) use masked adds of
exact ``0.0`` in the original visit order: ``x + 0.0 == x`` for the
non-negative quantities involved, so the scalar add sequence is
preserved. Padding lanes may hold inf/nan (``np.errstate`` suppressed);
they are excluded by the validity mask at every accumulation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.hw.platform import CpuSpec
from repro.uarch.caches import AnalyticalHierarchy
from repro.uarch.constants import DEFAULT_CONSTANTS, UarchConstants
from repro.uarch.events import PmuEvents
from repro.uarch.frontend import CodeRegion, FrontendModel
from repro.uarch.pipeline import CpuOpProfile

__all__ = ["SpecCpuGraphProfile", "profile_cells_cpu"]

#: Per-node event/cycle arrays shared by all cells of one evaluation;
#: SpecCpuGraphProfile materializes CpuOpProfile rows from these lazily.
_OP_ARRAY_FIELDS = (
    "cycles",
    "execution",
    "mem_stall",
    "fe_total",
    "bad_spec",
    "core_bound",
    "seconds",
    "instructions",
    "uops",
    "avx",
    "branch_inst",
    "mispredicts",
    "fe_icache",
    "fe_dsb_uops",
    "fe_mite_uops",
    "fe_dsb_cycles",
    "fe_mite_cycles",
    "fe_latency",
    "fe_bandwidth",
    "l1a",
    "l2a",
    "l3a",
    "drama",
    "dramb",
    "congested",
    "port0",
    "port12",
    "port3",
)


class _CpuArrays:
    """Bag of (cells, nodes) result arrays for lazy materialization."""

    def __init__(self, **arrays: np.ndarray) -> None:
        for name, arr in arrays.items():
            setattr(self, name, arr)


class SpecCpuGraphProfile:
    """Duck-typed :class:`~repro.uarch.pipeline.CpuGraphProfile`.

    Aggregates (events, compute/data-load seconds, per-kind times) are
    eager; the per-op :class:`CpuOpProfile` list is materialized lazily
    from the evaluation arrays, since only span/trace consumers need it.
    """

    def __init__(
        self,
        platform: str,
        graph_name: str,
        events: PmuEvents,
        compute_seconds: float,
        data_load_seconds: float,
        time_by_kind: Dict[str, float],
        arrays: _CpuArrays,
        cell_index: int,
        names: List[str],
        kinds: List[str],
    ) -> None:
        self.platform = platform
        self.graph_name = graph_name
        self.events = events
        self.compute_seconds = compute_seconds
        self.data_load_seconds = data_load_seconds
        self._time_by_kind = time_by_kind
        self._arrays = arrays
        self._cell = cell_index
        self._names = names
        self._kinds = kinds
        self._op_profiles: Optional[List[CpuOpProfile]] = None

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.data_load_seconds

    def time_by_kind(self) -> Dict[str, float]:
        return dict(self._time_by_kind)

    @property
    def op_profiles(self) -> List[CpuOpProfile]:
        if self._op_profiles is None:
            self._op_profiles = self._materialize()
        return self._op_profiles

    def _materialize(self) -> List[CpuOpProfile]:
        a, i = self._arrays, self._cell
        n = len(self._names)
        rows = {name: getattr(a, name)[i, :n].tolist() for name in _OP_ARRAY_FIELDS}
        profiles = []
        for j, (name, kind) in enumerate(zip(self._names, self._kinds)):
            events = PmuEvents(
                cycles=rows["cycles"][j],
                instructions=rows["instructions"][j],
                uops_retired=rows["uops"][j],
                avx_instructions=rows["avx"][j],
                branch_instructions=rows["branch_inst"][j],
                branch_mispredicts=rows["mispredicts"][j],
                icache_misses=rows["fe_icache"][j],
                dsb_uops=rows["fe_dsb_uops"][j],
                mite_uops=rows["fe_mite_uops"][j],
                dsb_limited_cycles=rows["fe_dsb_cycles"][j],
                mite_limited_cycles=rows["fe_mite_cycles"][j],
                frontend_latency_cycles=rows["fe_latency"][j],
                frontend_bandwidth_cycles=rows["fe_bandwidth"][j],
                core_bound_cycles=rows["core_bound"][j],
                memory_bound_cycles=rows["mem_stall"][j],
                bad_speculation_cycles=rows["bad_spec"][j],
                l1d_accesses=rows["l1a"][j],
                l2_accesses=rows["l2a"][j],
                l3_accesses=rows["l3a"][j],
                dram_accesses=rows["drama"][j],
                dram_bytes=rows["dramb"][j],
                dram_congested_cycles=rows["congested"][j],
                port_cycles_0=rows["port0"][j],
                port_cycles_1_2=rows["port12"][j],
                port_cycles_3_plus=rows["port3"][j],
            )
            profile = CpuOpProfile(
                node_name=name,
                op_kind=kind,
                cycles=rows["cycles"][j],
                execution_cycles=rows["execution"][j],
                memory_stall_cycles=rows["mem_stall"][j],
                frontend_stall_cycles=rows["fe_total"][j],
                bad_speculation_cycles=rows["bad_spec"][j],
                core_bound_cycles=rows["core_bound"][j],
                events=events,
            )
            profile._time_seconds = rows["seconds"][j]
            profiles.append(profile)
        return profiles


def _masked_totals(valid: np.ndarray, arr: np.ndarray) -> np.ndarray:
    """Left-to-right per-cell node sums (the scalar merge order)."""
    return np.where(valid, arr, 0.0).cumsum(axis=1)[:, -1]


def profile_cells_cpu(
    stacked, spec: CpuSpec, constants: Optional[UarchConstants] = None
) -> List[SpecCpuGraphProfile]:
    """Profile every stacked cell on one CPU spec."""
    c = constants if constants is not None else DEFAULT_CONSTANTS
    st = stacked
    valid = st.valid

    with np.errstate(all="ignore"):
        # ---- synth (repro.uarch.synth.synthesize) -------------------------
        lanes = spec.simd_fp32_lanes
        flops_per_vector_inst = np.where(st.uses_fma, lanes * 2, lanes)
        scalar_fraction = 1.0 - st.vector_fraction
        fma_scale = 256.0 / spec.simd_width_bits
        scalar_fraction = np.where(
            st.uses_fma, scalar_fraction * fma_scale, scalar_fraction
        )
        vector_flops = st.flops * (1.0 - scalar_fraction)
        scalar_flop_inst = st.flops * scalar_fraction
        vector_flop_inst = vector_flops / np.maximum(flops_per_vector_inst, 1)
        if spec.has_vnni:
            vector_flop_inst = np.where(
                st.uses_fma,
                vector_flop_inst * c.vnni_instruction_factor,
                vector_flop_inst,
            )
        # Stream terms iterate slot-major contiguous slices (shared,
        # platform-independent masks precomputed once on the stack).
        # Masked adds of exact 0.0 in slot order preserve the scalar add
        # sequence; r/q are mutually exclusive so their two adds fold
        # into one nested selection. Slots with no valid lane contribute
        # exactly +0.0 everywhere and are skipped.
        simd_bytes = spec.simd_width_bits // 8
        slots = st.stream_slots()
        stores = np.zeros(valid.shape, dtype=np.float64)
        vector_mem = np.zeros(valid.shape, dtype=np.float64)
        for slot in slots:
            if not slot.any_valid:
                continue
            stores = stores + np.where(
                slot.w, np.ceil(slot.total / simd_bytes), 0.0
            )
            per_access = np.maximum(1.0, np.ceil(slot.granule / simd_bytes))
            vector_mem = vector_mem + np.where(
                slot.r,
                slot.accesses * per_access,
                np.where(slot.q, slot.total / simd_bytes, 0.0),
            )
        branch_inst = st.branches.astype(np.float64)
        bookkeeping = st.scalar_ops.astype(np.float64)
        # scalar_memory_instructions is always 0.0, so load == vector_mem
        # and the mix total's "+ 0.0" term is the float identity.
        load_inst = vector_mem
        avx = vector_flop_inst + vector_mem
        mix_total = (
            (((vector_flop_inst + scalar_flop_inst) + vector_mem) + stores)
            + branch_inst
        ) + bookkeeping
        mix_uops = mix_total * c.uops_per_instruction

        # ---- branch (repro.uarch.branch.BranchModel) ----------------------
        mrate = st.branch_entropy * (1.0 - spec.predictor_quality)
        mispredicts = branch_inst * mrate
        bad_spec = (mispredicts * spec.branch_penalty) * c.badspec_slot_fraction

        # ---- backend (repro.uarch.backend.BackendModel) -------------------
        fma_uops = vector_flop_inst * c.uops_per_instruction
        scalar_alu_uops = (
            (scalar_flop_inst + bookkeeping) + branch_inst
        ) * c.uops_per_instruction
        load_uops = load_inst * c.uops_per_instruction
        store_uops = stores * c.uops_per_instruction
        total_uops = ((fma_uops + scalar_alu_uops) + load_uops) + store_uops
        fma_cycles = fma_uops / (spec.fma_ports * c.fma_port_efficiency)
        alu_cycles = scalar_alu_uops / (spec.alu_ports * c.alu_port_efficiency)
        load_cycles = load_uops / spec.load_ports
        store_cycles = store_uops / spec.store_ports
        be_exec = np.maximum(
            np.maximum(
                np.maximum(fma_cycles + alu_cycles * 0.5, alu_cycles), load_cycles
            ),
            store_cycles,
        )
        issue_cycles = total_uops / spec.issue_width
        be_exec = np.maximum(be_exec, issue_cycles)
        be_core_bound = np.maximum(0.0, be_exec - issue_cycles)
        port_uops = total_uops

        # ---- memory (repro.uarch.memory / repro.uarch.caches) -------------
        hier = AnalyticalHierarchy(spec)
        l1b, l2b, l3b = hier.l1_bytes, hier.l2_bytes, hier.l3_bytes
        dram_latency_cycles = spec.dram_latency_ns * spec.frequency_ghz
        bytes_per_cycle = spec.dram_bandwidth_gbps / spec.frequency_ghz
        uncovered = 1.0 - c.prefetch_coverage
        max_offcore = float(spec.max_offcore_requests)
        zeros = np.zeros(valid.shape, dtype=np.float64)
        l1a, l2a, l3a = zeros.copy(), zeros.copy(), zeros.copy()
        drama, dramb = zeros.copy(), zeros.copy()
        latency, occ_weight = zeros.copy(), zeros.copy()
        for slot in slots:
            if not slot.any_live:
                continue
            fp = slot.footprint
            acc = slot.accesses
            gran = slot.granule
            loc = slot.locality
            live = slot.live_acc
            is_rand = slot.is_random
            # _classify_random: residence-fraction chain + Zipf hot split.
            # min(remaining, capacity/footprint) handles footprint == 0
            # too: capacity/0 -> inf, so share == remaining, exactly the
            # scalar branch.
            share1 = np.minimum(1.0, l1b / fp)
            rem = 1.0 - share1
            rem = np.where(rem <= 0, 0.0, rem)
            share2 = np.minimum(rem, l2b / fp)
            rem = rem - share2
            rem = np.where(rem <= 0, 0.0, rem)
            share3 = np.minimum(rem, l3b / fp)
            hot = loc
            om = 1 - hot
            acc_loc = acc * loc
            acc_om = acc * om
            r_l1 = (acc * share1) * om
            r_l2 = acc * (share2 * om + hot * 0.35)
            r_l3 = acc * (share3 * om + hot * 0.65)
            r_dram = np.maximum(0.0, ((acc - r_l1) - r_l2) - r_l3)
            # _classify_sequential: smallest level holding the footprint.
            in_l1 = fp <= l1b
            in_l2 = fp <= l2b
            in_l3 = fp <= l3b
            s_l1 = np.where(in_l1, slot.acc_f, np.where(in_l2, acc_loc, 0.0))
            s_l2 = np.where(
                in_l1,
                0.0,
                np.where(in_l2, acc_om, np.where(in_l3, acc_loc, 0.0)),
            )
            s_l3 = np.where(in_l2, 0.0, np.where(in_l3, acc_om, acc_loc))
            s_dram = np.where(in_l3, 0.0, acc_om)
            lvl1 = np.where(live, np.where(is_rand, r_l1, s_l1), 0.0)
            lvl2 = np.where(live, np.where(is_rand, r_l2, s_l2), 0.0)
            lvl3 = np.where(live, np.where(is_rand, r_l3, s_l3), 0.0)
            lvld = np.where(live, np.where(is_rand, r_dram, s_dram), 0.0)
            l1a = l1a + lvl1
            l2a = l2a + lvl2
            l3a = l3a + lvl3
            drama = drama + lvld
            dramb = dramb + lvld * gran
            # Stall terms (reads only; writes hide behind store buffers).
            mlp = c.gather_mlp_base * slot.sqrt_par
            mlp = np.minimum(np.maximum(mlp, 1.0), max_offcore)
            dram_term = (lvld * dram_latency_cycles) * c.dram_visible_fraction
            rand_stall = (
                dram_term / mlp
                + ((lvl3 * spec.l3_latency) * c.l3_hit_visible_fraction)
                / np.minimum(mlp, 4.0)
            ) + (lvl2 * spec.l2_latency) * c.l2_hit_visible_fraction
            occ_term = rand_stall * np.minimum(
                1.0, mlp / spec.max_offcore_requests
            )
            seq_stall = dram_term * uncovered
            seq_stall = (
                seq_stall
                + ((lvl2 * gran) / spec.l2_bandwidth_bpc)
                * c.l2_stream_visible_fraction
            )
            seq_stall = (
                seq_stall
                + ((lvl3 * gran) / spec.l3_bandwidth_bpc)
                * c.l3_stream_visible_fraction
            )
            seq_stall = (
                seq_stall
                + ((lvld * gran) / bytes_per_cycle)
                * c.l3_stream_visible_fraction
            )
            latency = latency + np.where(
                slot.rmask, rand_stall, np.where(slot.smask, seq_stall, 0.0)
            )
            occ_weight = occ_weight + np.where(slot.rmask, occ_term, 0.0)
        dram_bw_cycles = dramb / max(bytes_per_cycle, 1e-9)
        mem_stall = np.maximum(latency, dram_bw_cycles)
        occupancy = np.where(
            mem_stall > 0, np.minimum(1.0, occ_weight / mem_stall), 0.0
        )

    # ---- frontend: the original scalar greedy-budget analysis ------------
    frontend_model = FrontendModel(spec, c)
    fe_arrays = {
        name: np.zeros(valid.shape, dtype=np.float64)
        for name in (
            "fe_dispatch",
            "fe_total",
            "fe_latency",
            "fe_bandwidth",
            "fe_icache",
            "fe_dsb_uops",
            "fe_mite_uops",
            "fe_dsb_cycles",
            "fe_mite_cycles",
        )
    }
    for i, cell in enumerate(st.cells):
        n = cell.n
        inst_row = mix_total[i, :n].tolist()
        uops_row = mix_uops[i, :n].tolist()
        misp_row = mispredicts[i, :n].tolist()
        code_row = cell.code_bytes.tolist()
        entries_row = cell.entries.tolist()
        branches_row = cell.branches.tolist()
        entropy_row = cell.branch_entropy.tolist()
        regions = [
            CodeRegion(
                name=cell.names[j],
                code_bytes=float(code_row[j]),
                unique_blocks=cell.unique_blocks[j],
                entries=float(entries_row[j]),
                instructions=inst_row[j],
                uops=uops_row[j],
                branches=float(branches_row[j]),
                mispredicts=misp_row[j],
                branch_entropy=entropy_row[j],
            )
            for j in range(n)
        ]
        profiles_by_name = frontend_model.analyze(regions)
        fes = [profiles_by_name[name] for name in cell.names]
        fe_arrays["fe_dispatch"][i, :n] = [f.dispatch_instructions for f in fes]
        fe_arrays["fe_total"][i, :n] = [f.total_cycles for f in fes]
        fe_arrays["fe_latency"][i, :n] = [f.latency_cycles for f in fes]
        fe_arrays["fe_bandwidth"][i, :n] = [f.bandwidth_cycles for f in fes]
        fe_arrays["fe_icache"][i, :n] = [f.icache_misses for f in fes]
        fe_arrays["fe_dsb_uops"][i, :n] = [f.dsb_uops for f in fes]
        fe_arrays["fe_mite_uops"][i, :n] = [f.mite_uops for f in fes]
        fe_arrays["fe_dsb_cycles"][i, :n] = [f.dsb_limited_cycles for f in fes]
        fe_arrays["fe_mite_cycles"][i, :n] = [f.mite_limited_cycles for f in fes]

    with np.errstate(all="ignore"):
        # ---- assembly (repro.uarch.pipeline.profile_workloads) ------------
        fe_dispatch = fe_arrays["fe_dispatch"]
        fe_total = fe_arrays["fe_total"]
        instructions = mix_total + fe_dispatch
        uops = mix_uops + fe_dispatch * c.uops_per_instruction
        execution = np.maximum(be_exec, uops / spec.issue_width)
        cycles = ((execution + mem_stall) + fe_total) + bad_spec
        thr = c.dram_congestion_threshold
        congested = np.where(
            occupancy <= thr,
            0.0,
            np.minimum(cycles, mem_stall) * ((occupancy - thr) / (1.0 - thr)),
        )
        seconds = cycles / (spec.frequency_ghz * 1e9)
        seconds = seconds + (
            (np.maximum(st.kernel_launches, 1) * c.cpu_dispatch_us) * 1e-6
        ) * 0.1
        seconds = seconds + c.cpu_dispatch_us * 1e-6

    # ---- port histogram: scalar pow, exactly BackendModel.port_histogram --
    num_units = spec.alu_ports + spec.load_ports + spec.store_ports
    nu_f = float(num_units)
    comb1 = math.comb(num_units, 1)
    comb2 = math.comb(num_units, 2)
    e1, e2 = num_units - 1, num_units - 2
    port0 = np.zeros(valid.shape, dtype=np.float64)
    port12 = np.zeros(valid.shape, dtype=np.float64)
    port3 = np.zeros(valid.shape, dtype=np.float64)
    for i, cell in enumerate(st.cells):
        n = cell.n
        cyc_row = cycles[i, :n].tolist()
        pu_row = port_uops[i, :n].tolist()
        p0_row, p12_row, p3_row = [], [], []
        for j in range(n):
            clamped = max(cyc_row[j], 1e-9)
            mean_busy = min(nu_f, pu_row[j] / clamped)
            p = mean_busy / num_units
            # pmf(k) = comb(n, k) * p**k * (1-p)**(n-k); comb(n, 0) and
            # p**0 are exactly 1, so pmf(0) reduces to the last factor.
            q = 1.0 - p
            p0 = q**num_units
            p12 = (comb1 * p**1) * q**e1 + (comb2 * p**2) * q**e2
            p0_row.append(p0)
            p12_row.append(p12)
            p3_row.append(max(0.0, 1.0 - p0 - p12))
        port0[i, :n] = p0_row
        port12[i, :n] = p12_row
        port3[i, :n] = p3_row
    with np.errstate(all="ignore"):
        port_cycles_0 = port0 * cycles
        port_cycles_1_2 = port12 * cycles
        port_cycles_3_plus = port3 * cycles

    arrays = _CpuArrays(
        cycles=cycles,
        execution=execution,
        mem_stall=mem_stall,
        fe_total=fe_total,
        bad_spec=bad_spec,
        core_bound=be_core_bound,
        seconds=seconds,
        instructions=instructions,
        uops=uops,
        avx=avx,
        branch_inst=branch_inst,
        mispredicts=mispredicts,
        fe_icache=fe_arrays["fe_icache"],
        fe_dsb_uops=fe_arrays["fe_dsb_uops"],
        fe_mite_uops=fe_arrays["fe_mite_uops"],
        fe_dsb_cycles=fe_arrays["fe_dsb_cycles"],
        fe_mite_cycles=fe_arrays["fe_mite_cycles"],
        fe_latency=fe_arrays["fe_latency"],
        fe_bandwidth=fe_arrays["fe_bandwidth"],
        l1a=l1a,
        l2a=l2a,
        l3a=l3a,
        drama=drama,
        dramb=dramb,
        congested=congested,
        port0=port_cycles_0,
        port12=port_cycles_1_2,
        port3=port_cycles_3_plus,
    )

    totals = {
        name: _masked_totals(valid, getattr(arrays, name)).tolist()
        for name in (
            "cycles",
            "instructions",
            "uops",
            "avx",
            "branch_inst",
            "mispredicts",
            "fe_icache",
            "fe_dsb_uops",
            "fe_mite_uops",
            "fe_dsb_cycles",
            "fe_mite_cycles",
            "fe_latency",
            "fe_bandwidth",
            "core_bound",
            "mem_stall",
            "bad_spec",
            "l1a",
            "l2a",
            "l3a",
            "drama",
            "dramb",
            "congested",
            "port0",
            "port12",
            "port3",
            "seconds",
        )
    }

    staging = c.host_staging_gbps * 1e9
    staging_latency = c.host_staging_latency_us * 1e-6
    profiles: List[SpecCpuGraphProfile] = []
    for i, cell in enumerate(st.cells):
        events = PmuEvents(
            cycles=totals["cycles"][i],
            instructions=totals["instructions"][i],
            uops_retired=totals["uops"][i],
            avx_instructions=totals["avx"][i],
            branch_instructions=totals["branch_inst"][i],
            branch_mispredicts=totals["mispredicts"][i],
            icache_misses=totals["fe_icache"][i],
            dsb_uops=totals["fe_dsb_uops"][i],
            mite_uops=totals["fe_mite_uops"][i],
            dsb_limited_cycles=totals["fe_dsb_cycles"][i],
            mite_limited_cycles=totals["fe_mite_cycles"][i],
            frontend_latency_cycles=totals["fe_latency"][i],
            frontend_bandwidth_cycles=totals["fe_bandwidth"][i],
            core_bound_cycles=totals["core_bound"][i],
            memory_bound_cycles=totals["mem_stall"][i],
            bad_speculation_cycles=totals["bad_spec"][i],
            l1d_accesses=totals["l1a"][i],
            l2_accesses=totals["l2a"][i],
            l3_accesses=totals["l3a"][i],
            dram_accesses=totals["drama"][i],
            dram_bytes=totals["dramb"][i],
            dram_congested_cycles=totals["congested"][i],
            port_cycles_0=totals["port0"][i],
            port_cycles_1_2=totals["port12"][i],
            port_cycles_3_plus=totals["port3"][i],
        )
        secs_row = seconds[i, : cell.n].tolist()
        time_by_kind: Dict[str, float] = {}
        for kind, sec in zip(cell.kinds, secs_row):
            time_by_kind[kind] = time_by_kind.get(kind, 0.0) + sec
        data_load = (
            cell.total_input_bytes / staging + staging_latency
        )
        profiles.append(
            SpecCpuGraphProfile(
                platform=spec.microarchitecture,
                graph_name=cell.graph_name,
                events=events,
                compute_seconds=float(totals["seconds"][i]),
                data_load_seconds=data_load,
                time_by_kind=time_by_kind,
                arrays=arrays,
                cell_index=i,
                names=cell.names,
                kinds=cell.kinds,
            )
        )
        if telemetry.enabled():
            registry = telemetry.get_registry()
            labels = dict(platform=spec.microarchitecture, graph=cell.graph_name)
            registry.counter("uarch.graphs_profiled", **labels).inc()
            registry.counter("uarch.ops_profiled", **labels).inc(cell.n)
            registry.counter("uarch.cycles", **labels).inc(events.cycles)
            registry.counter(
                "uarch.instructions", **labels
            ).inc(events.instructions)
    return profiles
