"""Synthetic query workloads (batch grids, index distributions)."""

from repro.workloads.distributions import (
    IndexDistribution,
    UniformIndices,
    ZipfIndices,
    hot_keys,
    hot_mass,
)
from repro.workloads.generator import (
    QueryGenerator,
    operator_breakdown_batch_sizes,
    paper_batch_sizes,
)
from repro.workloads.traces import DiurnalTrace, TraceInterval, TraceReplay, replay

__all__ = [
    "DiurnalTrace",
    "TraceInterval",
    "TraceReplay",
    "replay",
    "IndexDistribution",
    "UniformIndices",
    "ZipfIndices",
    "hot_keys",
    "hot_mass",
    "QueryGenerator",
    "paper_batch_sizes",
    "operator_breakdown_batch_sizes",
]
