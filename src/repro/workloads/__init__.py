"""Synthetic query workloads (batch grids, index distributions)."""

from repro.workloads.distributions import (
    IndexDistribution,
    UniformIndices,
    ZipfIndices,
)
from repro.workloads.generator import (
    QueryGenerator,
    operator_breakdown_batch_sizes,
    paper_batch_sizes,
)
from repro.workloads.traces import DiurnalTrace, TraceInterval, TraceReplay, replay

__all__ = [
    "DiurnalTrace",
    "TraceInterval",
    "TraceReplay",
    "replay",
    "IndexDistribution",
    "UniformIndices",
    "ZipfIndices",
    "QueryGenerator",
    "paper_batch_sizes",
    "operator_breakdown_batch_sizes",
]
