"""Categorical-index distributions for synthetic query generation.

Production recommendation traffic is heavily skewed: a small set of
popular items absorbs most lookups (this is what gives embedding
gathers their residual cache locality). Following DeepRecSys, we model
index popularity as a Zipf distribution with configurable exponent,
with a uniform distribution available as the no-locality baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "IndexDistribution",
    "UniformIndices",
    "ZipfIndices",
    "hot_keys",
    "hot_mass",
]

#: Rank-support cap shared by sampling and the hot-set helpers; ranks
#: beyond it are spread over the row space in fixed-stride groups.
_SUPPORT_CAP = 1 << 20


@lru_cache(maxsize=8)
def _zipf_rank_weights(support: int, alpha: float) -> "np.ndarray":
    """Unnormalized rank weights ``r**-alpha`` for ranks ``1..support``."""
    ranks = np.arange(1, support + 1, dtype=np.float64)
    return ranks ** (-alpha)


def _zipf_partial_mass(
    support: int, alpha: float, lo_rank: int, hi_rank: int
) -> float:
    """Probability mass of the 0-based rank range ``[lo, hi)``."""
    weights = _zipf_rank_weights(support, alpha)
    total = float(weights.sum())
    lo = max(0, min(lo_rank, support))
    hi = max(lo, min(hi_rank, support))
    return float(weights[lo:hi].sum()) / total


class IndexDistribution:
    """Samples embedding-table indices in ``[0, rows)``."""

    def sample(
        self, rng: np.random.Generator, rows: int, shape: "tuple[int, ...]"
    ) -> np.ndarray:
        raise NotImplementedError

    def expected_locality(self, rows: int) -> float:
        """Rough [0, 1] temporal-locality score for the memory model."""
        raise NotImplementedError

    def hot_keys(self, rows: int, k: int) -> np.ndarray:
        """The ``k`` most popular row indices, hottest first.

        Deterministic (no RNG): derived from the same rank-to-row
        mapping ``sample`` uses, so the returned rows are exactly the
        ones a sampled trace hits most often.
        """
        raise NotImplementedError

    def hot_mass(self, rows: int, k: int) -> float:
        """Fraction of lookups expected to land on ``hot_keys(rows, k)``."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformIndices(IndexDistribution):
    """Every row equally likely — worst-case locality."""

    def sample(self, rng, rows, shape):
        return rng.integers(0, rows, size=shape, dtype=np.int64)

    def expected_locality(self, rows: int) -> float:
        return 0.0

    def hot_keys(self, rows: int, k: int) -> np.ndarray:
        # No popularity skew: every "hot set" is arbitrary; use the
        # first k rows so the result is still deterministic.
        return np.arange(min(k, rows), dtype=np.int64)

    def hot_mass(self, rows: int, k: int) -> float:
        return min(k, rows) / float(rows)


@dataclass(frozen=True)
class ZipfIndices(IndexDistribution):
    """Zipf-ranked popularity with exponent ``alpha``.

    ``alpha`` around 0.6-1.0 matches published production embedding
    access skews; larger alpha means hotter hot rows.
    """

    alpha: float = 0.8

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("Zipf alpha must be positive")

    def sample(self, rng, rows, shape):
        # Inverse-CDF sampling over a truncated Zipf. Computing the full
        # rank CDF is O(rows); cap the support used for sampling at 2^20
        # ranks, mapping ranks onto the row space.
        support = min(rows, _SUPPORT_CAP)
        weights = _zipf_rank_weights(support, self.alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = rng.random(size=int(np.prod(shape)))
        sampled_ranks = np.searchsorted(cdf, u)
        if rows > support:
            # Spread ranks across the full row space deterministically
            # so indices still cover [0, rows).
            stride = rows // support
            sampled = sampled_ranks * stride + rng.integers(
                0, stride, size=sampled_ranks.shape
            )
        else:
            sampled = sampled_ranks
        return sampled.astype(np.int64).reshape(shape) % rows

    def expected_locality(self, rows: int) -> float:
        # Heavier skew -> more re-touches of hot rows. Saturating map
        # calibrated so alpha=0.8 over 1M rows gives ~0.2 (DeepRecSys'
        # observed reuse for production-like traces).
        return float(min(0.6, 0.25 * self.alpha / 0.8 * (1.0 - 1.0 / np.log2(max(rows, 4)))))

    def hot_keys(self, rows: int, k: int) -> np.ndarray:
        support = min(rows, _SUPPORT_CAP)
        k = min(k, support)
        ranks = np.arange(k, dtype=np.int64)
        if rows > support:
            # Mirror sample(): rank r maps onto the row group starting
            # at r * stride; report the group's first row.
            stride = rows // support
            return ranks * stride
        return ranks

    def hot_mass(self, rows: int, k: int) -> float:
        support = min(rows, _SUPPORT_CAP)
        return _zipf_partial_mass(support, self.alpha, 0, min(k, support))


def hot_keys(distribution: IndexDistribution, rows: int, k: int) -> np.ndarray:
    """Module-level convenience wrapper over ``distribution.hot_keys``."""
    return distribution.hot_keys(rows, k)


def hot_mass(distribution: IndexDistribution, rows: int, k: int) -> float:
    """Module-level convenience wrapper over ``distribution.hot_mass``."""
    return distribution.hot_mass(rows, k)
