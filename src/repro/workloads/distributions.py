"""Categorical-index distributions for synthetic query generation.

Production recommendation traffic is heavily skewed: a small set of
popular items absorbs most lookups (this is what gives embedding
gathers their residual cache locality). Following DeepRecSys, we model
index popularity as a Zipf distribution with configurable exponent,
with a uniform distribution available as the no-locality baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IndexDistribution", "UniformIndices", "ZipfIndices"]


class IndexDistribution:
    """Samples embedding-table indices in ``[0, rows)``."""

    def sample(
        self, rng: np.random.Generator, rows: int, shape: "tuple[int, ...]"
    ) -> np.ndarray:
        raise NotImplementedError

    def expected_locality(self, rows: int) -> float:
        """Rough [0, 1] temporal-locality score for the memory model."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformIndices(IndexDistribution):
    """Every row equally likely — worst-case locality."""

    def sample(self, rng, rows, shape):
        return rng.integers(0, rows, size=shape, dtype=np.int64)

    def expected_locality(self, rows: int) -> float:
        return 0.0


@dataclass(frozen=True)
class ZipfIndices(IndexDistribution):
    """Zipf-ranked popularity with exponent ``alpha``.

    ``alpha`` around 0.6-1.0 matches published production embedding
    access skews; larger alpha means hotter hot rows.
    """

    alpha: float = 0.8

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("Zipf alpha must be positive")

    def sample(self, rng, rows, shape):
        # Inverse-CDF sampling over a truncated Zipf. Computing the full
        # rank CDF is O(rows); cache nothing and cap the support used
        # for sampling at 2^20 ranks, mapping ranks onto the row space.
        support = min(rows, 1 << 20)
        ranks = np.arange(1, support + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = rng.random(size=int(np.prod(shape)))
        sampled_ranks = np.searchsorted(cdf, u)
        if rows > support:
            # Spread ranks across the full row space deterministically
            # so indices still cover [0, rows).
            stride = rows // support
            sampled = sampled_ranks * stride + rng.integers(
                0, stride, size=sampled_ranks.shape
            )
        else:
            sampled = sampled_ranks
        return sampled.astype(np.int64).reshape(shape) % rows

    def expected_locality(self, rows: int) -> float:
        # Heavier skew -> more re-touches of hot rows. Saturating map
        # calibrated so alpha=0.8 over 1M rows gives ~0.2 (DeepRecSys'
        # observed reuse for production-like traces).
        return float(min(0.6, 0.25 * self.alpha / 0.8 * (1.0 - 1.0 / np.log2(max(rows, 4)))))
