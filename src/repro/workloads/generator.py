"""Synthetic inference-query generation for the model suite.

Builds feed dictionaries matching a model's
:meth:`~repro.models.base.RecommendationModel.input_descriptions`:
continuous features from a standard normal, categorical indices from a
configurable popularity distribution. Also provides the batch-size
grids the paper sweeps (1 .. 16384).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.models.base import InputDescription, RecommendationModel
from repro.workloads.distributions import IndexDistribution, ZipfIndices

__all__ = ["QueryGenerator", "paper_batch_sizes", "operator_breakdown_batch_sizes"]


def paper_batch_sizes() -> List[int]:
    """The Fig 3/5 sweep: powers of four from 1 to 16384."""
    return [4**i for i in range(8)]  # 1 .. 16384


def operator_breakdown_batch_sizes() -> List[int]:
    """The four batch sizes of the Fig 6 operator-breakdown panels."""
    return [4, 64, 1024, 16384]


class QueryGenerator:
    """Deterministic synthetic query source for one model."""

    def __init__(
        self,
        model: RecommendationModel,
        distribution: Optional[IndexDistribution] = None,
        seed: int = 2020,
    ) -> None:
        self.model = model
        self.distribution = distribution if distribution is not None else ZipfIndices()
        self._rng = np.random.default_rng(seed)

    def generate(self, batch_size: int) -> Dict[str, np.ndarray]:
        """One feed dict for ``model.build_graph(batch_size)``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        feeds: Dict[str, np.ndarray] = {}
        for desc in self.model.input_descriptions(batch_size):
            if desc.kind == InputDescription.DENSE:
                feeds[desc.name] = self._rng.standard_normal(
                    desc.spec.shape
                ).astype(np.float32)
            elif desc.kind == InputDescription.INDICES:
                feeds[desc.name] = self.distribution.sample(
                    self._rng, desc.rows, desc.spec.shape
                )
            else:  # pragma: no cover - InputDescription owns the vocabulary
                raise ValueError(f"unknown input kind {desc.kind!r}")
        return feeds

    def stream(self, batch_size: int, num_batches: int):
        """Yield ``num_batches`` successive feed dicts."""
        for _ in range(num_batches):
            yield self.generate(batch_size)

    def input_bytes(self, batch_size: int) -> int:
        """Total bytes a query batch occupies (the PCIe payload)."""
        return sum(
            desc.spec.nbytes for desc in self.model.input_descriptions(batch_size)
        )
