"""Production-like load traces (diurnal pattern + noise).

DeepRecSys-style capacity studies replay a day of traffic rather than
a constant rate: load swings sinusoidally between a night-time trough
and an evening peak, with lognormal noise. ``DiurnalTrace`` generates
per-interval arrival rates and ``replay`` runs a
:class:`~repro.runtime.scheduler.QueryScheduler` across them,
reporting per-interval tail latency — which exposes the classic
provisioning question (meet the SLA *at peak*, idle at trough).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.runtime.scheduler import QueryScheduler, ScheduleResult

__all__ = ["DiurnalTrace", "TraceInterval", "TraceReplay", "replay"]


@dataclass(frozen=True)
class TraceInterval:
    hour: float
    arrival_qps: float


@dataclass(frozen=True)
class DiurnalTrace:
    """A day of load: sinusoid between trough and peak, plus noise.

    ``peak_hour`` positions the maximum (19:00 default — evening
    traffic); ``noise_sigma`` is the lognormal sigma of multiplicative
    per-interval jitter.
    """

    trough_qps: float = 2_000.0
    peak_qps: float = 20_000.0
    peak_hour: float = 19.0
    intervals_per_day: int = 24
    noise_sigma: float = 0.08
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.trough_qps <= 0 or self.peak_qps < self.trough_qps:
            raise ValueError("need 0 < trough <= peak")
        if self.intervals_per_day < 1:
            raise ValueError("need at least one interval")

    def intervals(self) -> List[TraceInterval]:
        rng = np.random.default_rng(self.seed)
        mid = (self.peak_qps + self.trough_qps) / 2.0
        amplitude = (self.peak_qps - self.trough_qps) / 2.0
        out = []
        for i in range(self.intervals_per_day):
            hour = 24.0 * i / self.intervals_per_day
            phase = 2.0 * np.pi * (hour - self.peak_hour) / 24.0
            rate = mid + amplitude * np.cos(phase)
            rate *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
            out.append(TraceInterval(hour=hour, arrival_qps=max(rate, 1.0)))
        return out

    @property
    def daily_queries(self) -> float:
        seconds_per_interval = 86_400.0 / self.intervals_per_day
        return sum(i.arrival_qps for i in self.intervals()) * seconds_per_interval


@dataclass
class TraceReplay:
    """Replay outcome: one schedule result per trace interval."""

    intervals: List[TraceInterval]
    results: List[ScheduleResult]

    @property
    def worst_p99(self) -> float:
        return max(r.p99 for r in self.results)

    @property
    def peak_interval(self) -> TraceInterval:
        idx = int(np.argmax([i.arrival_qps for i in self.intervals]))
        return self.intervals[idx]

    def sla_violations(self, sla_seconds: float, percentile: float = 99.0) -> int:
        return sum(
            1 for r in self.results if not r.meets_sla(sla_seconds, percentile)
        )

    @property
    def mean_utilized_batch(self) -> float:
        return float(np.mean([r.mean_batch_size for r in self.results]))


def replay(
    scheduler: QueryScheduler,
    trace: DiurnalTrace,
    queries_per_interval: int = 600,
) -> TraceReplay:
    """Run the scheduler across every interval of the trace."""
    intervals = trace.intervals()
    results = [
        scheduler.run(interval.arrival_qps, queries_per_interval)
        for interval in intervals
    ]
    return TraceReplay(intervals=intervals, results=results)
