"""Shared test configuration: hypothesis settings profiles.

Every property-test module used to carry its own ``@settings(...)``
boilerplate. The profiles here centralize that:

* ``dev`` (default) — fast feedback; the example counts the suite was
  tuned at.
* ``ci`` — thorough; more examples per property for scheduled or
  pre-release runs.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...``. Individual tests may
still override ``max_examples`` locally where a property is expensive
by construction; ``deadline=None`` comes from the profile (cost-model
evaluations have long cold-start outliers that trip per-example
deadlines).
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile("dev", max_examples=30, deadline=None)
settings.register_profile("ci", max_examples=150, deadline=None)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev")  # repro: noqa(REP006)
)
