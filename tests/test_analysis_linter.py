"""Tests for the REPnnn codebase linter and the `repro lint` CLI gate."""

import textwrap

import pytest

from repro import telemetry
from repro.analysis import LINT_RULES, lint_paths, lint_source
from repro.cli import main


def lint(code: str):
    return lint_source(textwrap.dedent(code), "fixture.py")


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


class TestRuleCatalog:
    def test_all_seven_rules_registered(self):
        assert sorted(LINT_RULES) == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007",
        ]
        for rule in LINT_RULES.values():
            assert rule.summary and rule.hint


class TestREP001UnseededRng:
    def test_np_random_global_draw_flagged(self):
        found = lint("""
            import numpy as np
            x = np.random.rand(4)
        """)
        assert rules_of(found) == ["REP001"]
        assert found[0].line == 3

    def test_numpy_alias_resolved(self):
        found = lint("""
            import numpy
            x = numpy.random.standard_normal(8)
        """)
        assert rules_of(found) == ["REP001"]

    def test_stdlib_random_flagged(self):
        found = lint("""
            import random
            x = random.randint(0, 10)
        """)
        assert rules_of(found) == ["REP001"]

    def test_default_rng_allowed(self):
        assert lint("""
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.standard_normal(4)
        """) == []

    def test_seeded_random_instance_allowed(self):
        assert lint("""
            import random
            rng = random.Random(7)
            x = rng.randint(0, 10)
        """) == []

    def test_unrelated_module_named_random_not_flagged(self):
        # `np.random` resolved via the numpy alias is the real target;
        # a local object attribute chain is not.
        assert lint("""
            x = obj.random.rand(4)
        """) == []


class TestREP002WallClock:
    def test_time_time_flagged(self):
        found = lint("""
            import time
            t = time.time()
        """)
        assert rules_of(found) == ["REP002"]

    def test_datetime_now_flagged(self):
        found = lint("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert rules_of(found) == ["REP002"]

    def test_from_import_datetime_now_flagged(self):
        found = lint("""
            from datetime import datetime
            t = datetime.now()
        """)
        assert rules_of(found) == ["REP002"]

    def test_perf_counter_allowed(self):
        assert lint("""
            import time
            t = time.perf_counter()
        """) == []


class TestREP003BuiltinHash:
    def test_hash_call_flagged(self):
        found = lint("""
            h = hash(("a", 1))
        """)
        assert rules_of(found) == ["REP003"]

    def test_method_named_hash_allowed(self):
        assert lint("""
            h = obj.hash("a")
        """) == []

    def test_dunder_hash_definition_allowed(self):
        assert lint("""
            class C:
                def __hash__(self):
                    return 7
        """) == []


class TestREP004UnlockedGlobal:
    def test_unlocked_global_assign_flagged(self):
        found = lint("""
            _count = 0

            def bump():
                global _count
                _count += 1
        """)
        assert rules_of(found) == ["REP004"]

    def test_locked_global_assign_allowed(self):
        assert lint("""
            import threading
            _lock = threading.Lock()
            _count = 0

            def bump():
                global _count
                with _lock:
                    _count += 1
        """) == []

    def test_attribute_lock_recognized(self):
        assert lint("""
            _total = 0

            class T:
                def add(self, n):
                    global _total
                    with self._lock:
                        _total += n
        """) == []

    def test_module_level_init_allowed(self):
        assert lint("""
            _state = {}
        """) == []


class TestREP005UnorderedIteration:
    def test_for_over_set_call_flagged(self):
        found = lint("""
            def merge(items):
                out = []
                for key in set(items):
                    out.append(key)
                return out
        """)
        assert rules_of(found) == ["REP005"]

    def test_set_literal_flagged(self):
        found = lint("""
            for name in {"b", "a"}:
                print(name)
        """)
        assert rules_of(found) == ["REP005"]

    def test_comprehension_over_set_flagged(self):
        found = lint("""
            names = [n for n in set(raw)]
        """)
        assert rules_of(found) == ["REP005"]

    def test_list_of_set_flagged(self):
        found = lint("""
            order = list(set(keys))
        """)
        assert rules_of(found) == ["REP005"]

    def test_join_of_set_flagged(self):
        found = lint("""
            text = ",".join({"b", "a"})
        """)
        assert rules_of(found) == ["REP005"]

    def test_sorted_set_allowed(self):
        assert lint("""
            for key in sorted(set(items)):
                print(key)
        """) == []

    def test_membership_test_allowed(self):
        assert lint("""
            seen = set(items)
            if "x" in seen:
                pass
        """) == []


class TestREP006EnvRead:
    def test_os_environ_get_flagged_once(self):
        found = lint("""
            import os
            def f():
                return os.environ.get("HOME")
        """)
        assert rules_of(found) == ["REP006"]

    def test_os_environ_subscript_flagged(self):
        found = lint("""
            import os
            def f():
                return os.environ["HOME"]
        """)
        assert rules_of(found) == ["REP006"]

    def test_os_getenv_flagged(self):
        found = lint("""
            import os
            def f():
                return os.getenv("HOME", "/")
        """)
        assert rules_of(found) == ["REP006"]

    def test_from_import_environ_flagged(self):
        found = lint("""
            from os import environ
            def f():
                return environ.get("HOME")
        """)
        assert rules_of(found) == ["REP006"]

    def test_from_import_getenv_flagged(self):
        found = lint("""
            from os import getenv
            def f():
                return getenv("HOME")
        """)
        assert rules_of(found) == ["REP006"]

    def test_unrelated_environ_attribute_allowed(self):
        assert lint("""
            class Config:
                environ = {}
            def f(cfg):
                return cfg.environ.get("HOME")
        """) == []

    def test_annotated_read_suppressed(self):
        assert lint("""
            import os
            def f():
                return os.environ.get("HOME")  # repro: noqa(REP006)
        """) == []


class TestREP007UnknownNoqa:
    def test_unknown_rule_id_warns(self):
        found = lint("""
            x = 1  # repro: noqa(REP999)
        """)
        assert rules_of(found) == ["REP007"]
        assert found[0].severity == "warning"
        assert "REP999" in found[0].message

    def test_unknown_id_does_not_suppress_real_finding(self):
        found = lint("""
            h = hash("a")  # repro: noqa(REP042)
        """)
        assert sorted(rules_of(found)) == ["REP003", "REP007"]

    def test_known_rep_and_gv_ids_accepted(self):
        assert lint("""
            h = hash("a")  # repro: noqa(REP003)
            y = 2  # repro: noqa(GV201)
        """) == []

    def test_mixed_known_and_unknown_ids(self):
        found = lint("""
            h = hash("a")  # repro: noqa(REP003, REP888)
        """)
        # REP003 is suppressed; the dead REP888 id still warns.
        assert rules_of(found) == ["REP007"]

    def test_bare_noqa_never_warns(self):
        assert lint("""
            h = hash("a")  # repro: noqa
        """) == []

    def test_select_without_rep007_skips_the_warning(self):
        found = lint_source(
            'x = 1  # repro: noqa(REP999)\n', select=["REP003"]
        )
        assert found == []


class TestSuppression:
    def test_targeted_noqa_suppresses(self):
        assert lint("""
            h = hash("a")  # repro: noqa(REP003)
        """) == []

    def test_bare_noqa_suppresses_all(self):
        assert lint("""
            h = hash("a")  # repro: noqa
        """) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        found = lint("""
            h = hash("a")  # repro: noqa(REP001)
        """)
        assert rules_of(found) == ["REP003"]

    def test_multi_rule_noqa(self):
        assert lint("""
            import numpy as np
            x = np.random.rand(int(hash("s")))  # repro: noqa(REP001, REP003)
        """) == []

    def test_noqa_inside_decorated_function(self):
        # The decorator does not shift the finding's anchor line; the
        # noqa on the offending statement still matches.
        assert lint("""
            import functools
            @functools.lru_cache(maxsize=None)
            def digest(key):
                return hash(key)  # repro: noqa(REP003)
        """) == []

    def test_noqa_on_multiline_statement_first_line(self):
        # Findings anchor at the expression's first physical line, so
        # that is where the suppression comment belongs.
        assert lint("""
            h = hash(  # repro: noqa(REP003)
                "a" * 100
            )
        """) == []

    def test_noqa_on_multiline_statement_last_line_does_not_suppress(self):
        # Documented limitation: suppression is strictly line-anchored.
        found = lint("""
            h = hash(
                "a" * 100
            )  # repro: noqa(REP003)
        """)
        assert rules_of(found) == ["REP003"]

    def test_noqa_on_decorator_line_does_not_reach_body(self):
        found = lint("""
            import functools
            @functools.lru_cache(maxsize=None)  # repro: noqa(REP003)
            def digest(key):
                return hash(key)
        """)
        assert rules_of(found) == ["REP003"]


class TestSelectAndSyntax:
    def test_select_restricts_rules(self):
        code = """
            import numpy as np
            x = np.random.rand(4)
            h = hash("a")
        """
        assert rules_of(lint_source(textwrap.dedent(code))) == [
            "REP001", "REP003"
        ]
        only = lint_source(textwrap.dedent(code), select=["REP003"])
        assert rules_of(only) == ["REP003"]

    def test_syntax_error_reported(self):
        found = lint_source("def broken(:\n", "bad.py")
        assert rules_of(found) == ["REP000"]


class TestLintPaths:
    def test_src_and_tests_are_clean(self):
        # The repo-wide invariant the CI gate enforces.
        report = lint_paths(["src", "tests"])
        assert report.clean, report.render_text()

    def test_violating_file_found(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        report = lint_paths([tmp_path])
        assert rules_of(report) == ["REP002"]
        assert report.diagnostics[0].file == str(bad)

    def test_telemetry_counters(self, tmp_path):
        (tmp_path / "bad.py").write_text("h = hash('a')\n")
        telemetry.reset()
        with telemetry.capture() as (_, registry):
            lint_paths([tmp_path])
        by_key = {
            (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
            for m in registry.snapshot()
        }
        assert by_key[("analysis.lint_runs", ())] == 1
        assert by_key[("analysis.diagnostics", (("rule", "REP003"),))] == 1


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["lint", "--strict", "src"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_violation_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("h = hash('a')\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "REP003"

    def test_lint_select(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nh = hash('a')\nt = time.time()\n")
        assert main(["lint", "--select", "REP002", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "REP003" not in out

    def test_lint_missing_path_errors(self):
        with pytest.raises(SystemExit):
            main(["lint", "definitely/not/a/path"])

    def test_verify_exit_zero(self, capsys):
        assert main(["verify", "--models", "ncf", "--batches", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_verify_json(self, capsys):
        import json

        assert main([
            "verify", "--models", "ncf", "--batches", "4",
            "--format", "json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["graph"] for r in records} == {"raw", "optimized"}
        assert all(r["status"] == "ok" for r in records)
