"""Property tests: the verifier's contract over the whole model zoo.

Two invariants the static-analysis subsystem promises:

1. every zoo graph verifies clean at small, medium, and very large batch
   sizes (the symbolic-batch rules scale, they are not pinned to the
   batch the graph was built at), raw and optimized;
2. the verifier's *inferred* output specs equal the shapes the executor
   actually produces — under both lazy and eager parameter modes.
"""

import numpy as np
import pytest

from repro.analysis import (
    check_equivalence,
    inferred_output_specs,
    verify_graph,
)
from repro.graph import execute, optimize
from repro.graph.tensor import TensorSpec
from repro.models import MODEL_ORDER, build_model
from repro.ops.lazy import eager_params
from repro.workloads import QueryGenerator

BATCHES = (1, 64, 16384)


@pytest.mark.parametrize("name", MODEL_ORDER)
@pytest.mark.parametrize("batch", BATCHES)
def test_zoo_graph_verifies_clean(name, batch):
    graph = build_model(name).build_graph(batch)
    report = verify_graph(graph)
    assert report.clean, f"{name}@{batch}:\n{report.render_text()}"


@pytest.mark.parametrize("name", MODEL_ORDER)
@pytest.mark.parametrize("batch", BATCHES)
def test_optimized_zoo_graph_verifies_and_is_equivalent(name, batch):
    graph = build_model(name).build_graph(batch)
    optimized = optimize(graph)  # optimize() itself asserts both checks
    assert verify_graph(optimized).ok
    assert check_equivalence(graph, optimized).clean


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_inferred_specs_match_executor_lazy(name):
    model = build_model(name)
    batch = 4
    graph = model.build_graph(batch)
    feeds = QueryGenerator(model, seed=7).generate(batch)
    outputs = execute(graph, feeds)
    inferred = inferred_output_specs(graph)
    assert set(inferred) == set(outputs)
    for out, spec in inferred.items():
        assert TensorSpec.like(outputs[out]) == spec, out


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_inferred_specs_match_executor_eager(name):
    with eager_params():
        model = build_model(name)
        batch = 4
        graph = model.build_graph(batch)
        feeds = QueryGenerator(model, seed=7).generate(batch)
        outputs = execute(graph, feeds)
    inferred = inferred_output_specs(graph)
    for out, spec in inferred.items():
        assert TensorSpec.like(outputs[out]) == spec, out


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_inferred_specs_scale_with_batch(name):
    """Leading output dims follow the batch; trailing dims are fixed."""
    model = build_model(name)
    shapes = {}
    for batch in (2, 8):
        specs = inferred_output_specs(model.build_graph(batch))
        shapes[batch] = {out: spec.shape for out, spec in specs.items()}
    assert set(shapes[2]) == set(shapes[8])
    for out in shapes[2]:
        lo, hi = shapes[2][out], shapes[8][out]
        assert lo[0] == 2 and hi[0] == 8
        assert lo[1:] == hi[1:]
