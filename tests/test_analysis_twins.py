"""Twin-drift analyzer: registry sanity, baseline cleanliness, and the
one-term perturbation regressions (GV201/GV202/GV203)."""

from pathlib import Path

import pytest

from repro.analysis import TWIN_PAIRS, TWIN_RULES, analyze_twins
from repro.analysis.twins import TwinFunction, TwinPair

VEC_CPU = Path("src/repro/uarch/vectorized.py")
VEC_GPU = Path("src/repro/gpusim/vectorized.py")


def _rules(report):
    return sorted(d.rule for d in report)


class TestRegistry:
    def test_both_vectorized_evaluators_are_paired(self):
        vec = {p.vectorized.label for p in TWIN_PAIRS}
        assert "repro.uarch.vectorized.profile_cells_cpu" in vec
        assert "repro.gpusim.vectorized.profile_cells_gpu" in vec

    def test_rules_documented(self):
        assert set(TWIN_RULES) == {"GV201", "GV202", "GV203"}

    def test_every_registered_function_resolves(self):
        # Baseline cleanliness (below) implies this, but the explicit
        # check gives a readable failure when a refactor moves a twin.
        report = analyze_twins()
        assert not [d for d in report if d.rule == "GV203"], (
            report.render_text()
        )


class TestBaseline:
    def test_working_tree_has_zero_drift(self):
        report = analyze_twins()
        assert report.clean, report.render_text()


class TestCpuPerturbations:
    def test_changed_float_term_in_vectorized_flags_both_sides(self):
        src = VEC_CPU.read_text(encoding="utf-8")
        assert "hot * 0.35)" in src
        perturbed = src.replace("hot * 0.35)", "hot * 0.350001)")
        report = analyze_twins(
            sources={"repro.uarch.vectorized": perturbed}
        )
        # The scalar 0.35 lost its mirror (GV201) and the new 0.350001
        # appears nowhere scalar (GV202).
        assert _rules(report) == ["GV201", "GV202"]
        messages = " ".join(d.message for d in report)
        assert "0.35" in messages and "0.350001" in messages

    def test_dropped_spec_term_in_vectorized_flags_gv201(self):
        src = VEC_CPU.read_text(encoding="utf-8")
        assert "spec.predictor_quality" in src
        perturbed = src.replace("spec.predictor_quality", "0.99", 1)
        report = analyze_twins(
            sources={"repro.uarch.vectorized": perturbed}
        )
        assert any(
            d.rule == "GV201" and "predictor_quality" in d.message
            for d in report
        ), report.render_text()

    def test_new_constant_in_scalar_model_flags_gv201(self):
        branch = Path("src/repro/uarch/branch.py").read_text(
            encoding="utf-8"
        )
        perturbed = branch.replace(
            "self.constants.badspec_slot_fraction",
            "self.constants.badspec_slot_fraction"
            " * self.constants.frontend_greedy_bonus",
            1,
        )
        assert perturbed != branch
        report = analyze_twins(sources={"repro.uarch.branch": perturbed})
        assert any(
            d.rule == "GV201" and "frontend_greedy_bonus" in d.message
            for d in report
        ), report.render_text()

    def test_removed_shared_helper_call_flags_gv203(self):
        src = VEC_CPU.read_text(encoding="utf-8")
        # Sever the delegation to the shared frontend model.
        perturbed = src.replace(".analyze(", ".analyze_renamed(")
        assert perturbed != src
        report = analyze_twins(
            sources={"repro.uarch.vectorized": perturbed}
        )
        assert any(
            d.rule == "GV203" and "FrontendModel.analyze" in d.message
            for d in report
        ), report.render_text()


class TestGpuPerturbations:
    def test_changed_gpu_constant_flags_both_sides(self):
        src = VEC_GPU.read_text(encoding="utf-8")
        assert "_THREADS_PER_SM" in src
        perturbed = src.replace("_THREADS_PER_SM", "_THREADS_PER_CORE")
        report = analyze_twins(
            sources={"repro.gpusim.vectorized": perturbed}
        )
        rules = _rules(report)
        assert "GV201" in rules and "GV202" in rules, report.render_text()


class TestUnresolvable:
    def test_missing_module_is_gv203(self):
        pair = TwinPair(
            name="ghost",
            vectorized=TwinFunction("repro.uarch.no_such_module", "f"),
            scalars=(),
        )
        report = analyze_twins(pairs=[pair])
        assert _rules(report) == ["GV203"]

    def test_missing_qualname_is_gv203(self):
        pair = TwinPair(
            name="ghost",
            vectorized=TwinFunction(
                "repro.uarch.vectorized", "no_such_function"
            ),
            scalars=(),
        )
        report = analyze_twins(pairs=[pair])
        assert _rules(report) == ["GV203"]

    def test_missing_scalar_twin_is_gv203(self):
        pair = TwinPair(
            name="halfghost",
            vectorized=TwinFunction(
                "repro.uarch.vectorized", "profile_cells_cpu"
            ),
            scalars=(
                TwinFunction("repro.uarch.branch", "BranchModel.vanished"),
            ),
        )
        report = analyze_twins(pairs=[pair])
        assert any(d.rule == "GV203" for d in report)


class TestCliIntegration:
    def test_lint_includes_twin_pass(self, capsys):
        from repro.cli import main

        code = main(["lint", "--strict", "src/repro/analysis"])
        assert code == 0

    @pytest.mark.parametrize("flag", [[], ["--no-twins"]])
    def test_lint_select_gv_rules(self, flag, capsys):
        from repro.cli import main

        code = main(
            ["lint", "--select", "GV201,GV202,GV203",
             "src/repro/analysis/diagnostics.py", *flag]
        )
        out = capsys.readouterr().out
        # Working tree is drift-free, so both variants are clean; the
        # difference is only whether the pass ran at all.
        assert code == 0
        assert "no diagnostics" in out
