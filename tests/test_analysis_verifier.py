"""Tests for the static graph verifier (repro.analysis)."""

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import (
    BATCH,
    Diagnostic,
    DiagnosticReport,
    GraphVerifyError,
    RuleError,
    SymDim,
    SymSpec,
    assert_equivalent,
    assert_verified,
    check_equivalence,
    inferred_output_specs,
    verify_graph,
)
from repro.graph import Graph, GraphBuilder, GraphError, Node, optimize
from repro.graph.tensor import TensorSpec
from repro.ops import FC, Concat, EmbeddingTable, Relu, SparseLengthsSum
from repro.runtime.graph_cache import GraphCache


def small_graph(batch: int = 8) -> Graph:
    b = GraphBuilder("small")
    x = b.input("dense", (batch, 16))
    idx = b.input("idx", (batch, 4), dtype="int64")
    h = b.apply(FC(16, 8, "fc0"), x)
    h = b.apply(Relu(), h)
    e = b.apply(SparseLengthsSum(EmbeddingTable(1000, 8, "t0")), idx)
    z = b.apply(Concat(axis=1), [h, e])
    out = b.apply(FC(16, 1, "fc1"), z)
    b.output(out)
    return b.build()


def tamper(graph: Graph, name: str, **changes) -> Graph:
    """Swap one node for a modified copy (white-box fault injection)."""
    node = graph._nodes[name]
    graph._nodes[name] = dataclasses.replace(node, **changes)
    return graph


class TestSymDim:
    def test_arithmetic(self):
        assert BATCH + 3 == SymDim(1, 3)
        assert BATCH + BATCH == SymDim(2, 0)
        assert 2 * BATCH == SymDim(2, 0)
        assert BATCH * 4 == SymDim(4, 0)
        # constant-only results collapse back to int
        assert SymDim(0, 5) + 2 == 7
        assert SymDim(0, 3) * SymDim(0, 4) == 12

    def test_nonlinear_product_rejected(self):
        with pytest.raises(RuleError):
            BATCH * BATCH

    def test_concrete(self):
        assert SymDim(2, 3).concrete(10) == 23
        assert str(BATCH) == "B"
        assert str(SymDim(2, 1)) == "2B+1"

    def test_symspec_concretize(self):
        spec = SymSpec((BATCH, 16), "float32")
        assert spec.concretize(4) == TensorSpec((4, 16), "float32")


class TestVerifyClean:
    def test_small_graph_clean(self):
        report = verify_graph(small_graph())
        assert report.clean, report.render_text()

    def test_assert_verified_passes(self):
        assert_verified(small_graph())

    def test_inferred_specs_match_stored(self):
        g = small_graph(batch=8)
        specs = inferred_output_specs(g)
        assert set(specs) == set(g.output_names)
        for out, spec in specs.items():
            assert spec == g.spec_of(out)

    def test_symbolic_batch_scales(self):
        for batch in (3, 8, 129):
            specs = inferred_output_specs(small_graph(batch=batch))
            (spec,) = specs.values()
            assert spec.shape == (batch, 1)


class TestInjectedDefects:
    def test_shape_mismatch_caught(self):
        g = small_graph()
        tamper(g, "fc_1", output_spec=TensorSpec((8, 7)))
        report = verify_graph(g)
        assert [d.rule for d in report.errors] == ["GV104"]
        assert report.errors[0].node == "fc_1"
        with pytest.raises(GraphVerifyError) as exc:
            assert_verified(g)
        assert exc.value.node == "fc_1"
        assert exc.value.report.errors

    def test_dtype_mismatch_caught(self):
        g = small_graph()
        spec = g._nodes["fc_1"].output_spec
        tamper(g, "fc_1", output_spec=TensorSpec(spec.shape, "float64"))
        rules = [d.rule for d in verify_graph(g).errors]
        assert rules == ["GV105"]

    def test_dangling_edge_caught(self):
        g = small_graph()
        tamper(g, "concat_0", inputs=("relu_0", "ghost"))
        report = verify_graph(g)
        assert "GV101" in [d.rule for d in report.errors]
        d = report.by_rule("GV101")[0]
        assert d.node == "concat_0" and d.edge == "ghost"

    def test_use_before_def_caught(self):
        g = small_graph()
        # relu_0 now consumes the later concat node: a back edge.
        tamper(g, "relu_0", inputs=("concat_0",))
        rules = {d.rule for d in verify_graph(g).errors}
        assert "GV102" in rules

    def test_cycle_caught(self):
        g = small_graph()
        # relu_0 <-> concat_0 form a true dependency cycle.
        tamper(g, "relu_0", inputs=("concat_0",))
        rules = {d.rule for d in verify_graph(g).errors}
        assert "GV103" in rules

    def test_dead_tensor_warned(self):
        b = GraphBuilder("dead")
        x = b.input("x", (4, 16))
        live = b.apply(FC(16, 8, "live"), x)
        b.apply(FC(16, 4, "dead"), x)  # never consumed, never marked
        b.graph.mark_output(live)
        report = verify_graph(b.graph)
        assert [d.rule for d in report] == ["GV107"]
        assert report.ok and not report.clean  # warning, not error
        assert_verified(b.graph)  # warnings do not raise

    def test_no_outputs_caught(self):
        b = GraphBuilder("noout")
        x = b.input("x", (4, 16))
        b.apply(FC(16, 8, "f"), x)
        rules = [d.rule for d in verify_graph(b.graph).errors]
        assert "GV109" in rules

    def test_undefined_output_caught(self):
        g = small_graph()
        g._outputs.append("phantom")
        rules = [d.rule for d in verify_graph(g).errors]
        assert "GV108" in rules

    def test_rule_failure_on_bad_wiring(self):
        g = small_graph()
        # FC fed with the int64 index tensor: the FC rule rejects it.
        tamper(g, "fc_0", inputs=("idx",))
        report = verify_graph(g)
        assert "GV106" in [d.rule for d in report.errors]

    def test_inferred_specs_raise_on_broken_graph(self):
        g = small_graph()
        tamper(g, "fc_1", output_spec=TensorSpec((8, 7)))
        with pytest.raises(GraphVerifyError):
            inferred_output_specs(g)


class TestGraphErrorAttributes:
    def test_validate_carries_node_edge_and_kind(self):
        g = small_graph()
        tamper(g, "relu_0", inputs=("concat_0",))
        with pytest.raises(GraphError) as exc:
            g.validate()
        assert exc.value.node == "relu_0"
        assert exc.value.edge == "concat_0"
        assert "Relu" in str(exc.value)
        assert "concat_0" in str(exc.value)

    def test_plain_graph_error_defaults(self):
        err = GraphError("boom")
        assert err.node is None and err.edge is None

    def test_unknown_tensor_carries_edge(self):
        with pytest.raises(GraphError) as exc:
            small_graph().spec_of("nope")
        assert exc.value.edge == "nope"


class TestEquivalence:
    def test_optimized_graph_is_equivalent(self):
        g = small_graph()
        report = check_equivalence(g, optimize(g))
        assert report.clean, report.render_text()

    def test_output_spec_change_detected(self):
        g = small_graph()
        b = GraphBuilder("small")  # same interface, narrower output
        x = b.input("dense", (8, 16))
        idx = b.input("idx", (8, 4), dtype="int64")
        h = b.apply(FC(16, 2, "fc0"), x)
        b.apply(SparseLengthsSum(EmbeddingTable(1000, 8, "t0")), idx)
        b.output(h)
        broken = b.graph
        report = check_equivalence(g, broken)
        assert "GV122" in [d.rule for d in report.errors]
        with pytest.raises(GraphVerifyError):
            assert_equivalent(g, broken)

    def test_dropped_output_detected(self):
        g = small_graph()
        pruned = small_graph()
        pruned._outputs.clear()
        report = check_equivalence(g, pruned)
        assert "GV121" in [d.rule for d in report.errors]

    def test_input_interface_change_detected(self):
        g = small_graph(batch=8)
        other = small_graph(batch=16)
        report = check_equivalence(g, other)
        assert "GV120" in [d.rule for d in report.errors]


class TestIntegration:
    def test_builder_build_verifies(self):
        # build() runs the verifier; verify=False skips it.
        b = GraphBuilder("ok")
        x = b.input("x", (4, 16))
        b.output(b.apply(FC(16, 8, "f"), x))
        assert b.build() is b.graph
        assert b.build(verify=False) is b.graph

    def test_graph_cache_refuses_unverifiable_graph(self):
        class BrokenModel:
            name = "broken"

            def graph_signature(self):
                return ("broken", 1)

            def build_graph(self, batch_size):
                g = small_graph(batch_size)
                return tamper(g, "fc_1", output_spec=TensorSpec((8, 7)))

        cache = GraphCache()
        with pytest.raises(GraphVerifyError):
            cache.get(BrokenModel(), 8)
        assert len(cache) == 0  # nothing cached
        stats = cache.stats()
        assert stats.hits == 0

    def test_telemetry_counters(self):
        telemetry.reset()
        good = small_graph()  # built (and auto-verified) outside capture
        g = small_graph()
        tamper(g, "fc_1", output_spec=TensorSpec((8, 7)))
        with telemetry.capture() as (_, registry):
            verify_graph(good)
            verify_graph(g)
        snapshot = {
            (m["name"], tuple(sorted(m.get("labels", {}).items()))): m
            for m in registry.snapshot()
        }
        verified = snapshot[("analysis.graphs_verified", ())]
        assert verified["value"] == 2
        flagged = snapshot[
            ("analysis.diagnostics", (("rule", "GV104"),))
        ]
        assert flagged["value"] == 1


class TestDiagnosticsAPI:
    def test_report_renderings(self):
        report = DiagnosticReport()
        assert report.render_text() == "no diagnostics"
        report.add(Diagnostic("GV104", "error", "bad", node="n"))
        report.add(Diagnostic("GV107", "warning", "meh", node="m"))
        text = report.render_text()
        assert "GV104" in text and "1 error(s)" in text
        assert report.exit_code() == 1
        assert report.exit_code(strict=True) == 1
        assert report.rule_counts() == {"GV104": 1, "GV107": 1}
        assert "diagnostics" in report.to_json()

    def test_warning_only_exit_codes(self):
        report = DiagnosticReport()
        report.add(Diagnostic("GV107", "warning", "meh"))
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("GV999", "fatal", "nope")


class TestExecutorAgreement:
    def test_inferred_specs_match_execution(self):
        from repro.graph import execute

        g = small_graph(batch=8)
        rng = np.random.default_rng(0)
        feeds = {
            "dense": rng.standard_normal((8, 16)).astype(np.float32),
            "idx": rng.integers(0, 1000, size=(8, 4), dtype=np.int64),
        }
        outputs = execute(g, feeds)
        inferred = inferred_output_specs(g)
        for name, spec in inferred.items():
            assert TensorSpec.like(outputs[name]) == spec
