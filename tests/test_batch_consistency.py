"""Batch-consistency properties of the functional executor.

Every operator in the suite is row-independent across the batch
dimension, so executing a batch must equal executing its halves and
stacking — the property that makes dynamic batching semantically free.
"""

import numpy as np
import pytest

from repro.graph import execute
from repro.models import MODEL_ORDER, build_all_models
from repro.workloads import QueryGenerator


@pytest.fixture(scope="module")
def models():
    return build_all_models()


def _split_feeds(feeds, k):
    first = {name: arr[:k] for name, arr in feeds.items()}
    second = {name: arr[k:] for name, arr in feeds.items()}
    return first, second


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_batch_equals_stacked_halves(models, name):
    model = models[name]
    batch = 8
    feeds = QueryGenerator(model, seed=11).generate(batch)
    (full,) = execute(model.build_graph(batch), feeds).values()

    half_a, half_b = _split_feeds(feeds, batch // 2)
    graph_half = model.build_graph(batch // 2)
    (out_a,) = execute(graph_half, half_a).values()
    (out_b,) = execute(graph_half, half_b).values()
    stacked = np.concatenate([out_a, out_b], axis=0)
    np.testing.assert_allclose(full, stacked, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("name", ["ncf", "rm1", "din", "dien"])
def test_sample_order_equivariance(models, name):
    """Permuting the batch permutes the outputs identically."""
    model = models[name]
    batch = 6
    feeds = QueryGenerator(model, seed=13).generate(batch)
    graph = model.build_graph(batch)
    (base,) = execute(graph, feeds).values()
    perm = np.array([3, 1, 5, 0, 2, 4])
    permuted_feeds = {k: v[perm] for k, v in feeds.items()}
    (permuted,) = execute(graph, permuted_feeds).values()
    np.testing.assert_allclose(permuted, base[perm], rtol=1e-4, atol=1e-6)
