"""Tests for the cache simulation substrate.

Includes the trace-driven/analytical cross-validation that justifies
using the closed-form residency model in the fast path.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import BROADWELL, CASCADE_LAKE
from repro.ops.workload import MemoryStream, RANDOM, SEQUENTIAL
from repro.uarch import AnalyticalHierarchy, CacheHierarchy, SetAssociativeCache


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(64 * 8 * 4, ways=4)
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_same_tag(self):
        c = SetAssociativeCache(64 * 8 * 4, ways=4)
        c.access(0)
        assert c.access(63)  # same 64B line
        assert not c.access(64)  # next line

    def test_lru_eviction_order(self):
        # 1 set x 2 ways: third distinct line in the set evicts the LRU.
        c = SetAssociativeCache(64 * 2, ways=2)
        c.access(0)       # line A
        c.access(64)      # line B
        c.access(0)       # touch A (B is now LRU)
        c.access(128)     # line C evicts B
        assert c.access(0)
        assert not c.access(64)

    def test_capacity_respected(self):
        c = SetAssociativeCache(64 * 16, ways=4)  # 16 lines
        for i in range(32):
            c.access(i * 64)
        hits = sum(c.access(i * 64) for i in range(32))
        assert hits <= 16

    def test_working_set_within_capacity_all_hits(self):
        c = SetAssociativeCache(64 * 64, ways=8)
        addrs = [i * 64 for i in range(32)]
        for a in addrs:
            c.access(a)
        assert all(c.access(a) for a in addrs)

    def test_invalidate(self):
        c = SetAssociativeCache(64 * 8, ways=2)
        c.access(0)
        assert c.invalidate(0)
        assert not c.probe(0)
        assert not c.invalidate(0)

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, ways=4)

    def test_miss_rate(self):
        c = SetAssociativeCache(64 * 8, ways=2)
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)


class TestCacheHierarchy:
    def _small(self, inclusive):
        return CacheHierarchy(
            l1_bytes=64 * 8,
            l2_bytes=64 * 32,
            l3_bytes=64 * 128,
            inclusive=inclusive,
            l1_ways=2,
            l2_ways=4,
            l3_ways=8,
        )

    @pytest.mark.parametrize("inclusive", [True, False])
    def test_first_access_is_dram(self, inclusive):
        h = self._small(inclusive)
        assert h.access(0) == "dram"

    @pytest.mark.parametrize("inclusive", [True, False])
    def test_immediate_reuse_hits_l1(self, inclusive):
        h = self._small(inclusive)
        h.access(0)
        assert h.access(0) == "l1"

    def test_l1_victim_hits_l2(self):
        h = self._small(inclusive=True)
        h.access(0)
        # Evict line 0 from tiny L1 (2-way, 4 sets) with two conflicting lines.
        h.access(256)
        h.access(512)
        assert h.access(0) == "l2"

    def test_exclusive_l3_is_victim_cache(self):
        h = self._small(inclusive=False)
        h.access(0)
        # Before any L2 eviction, the line is in L2 but NOT in L3.
        assert not h.l3.probe(0)

    def test_inclusive_l3_holds_everything(self):
        h = self._small(inclusive=True)
        for i in range(8):
            h.access(i * 64)
        for i in range(8):
            assert h.l3.probe(i * 64)

    def test_exclusive_hierarchy_total_capacity_exceeds_inclusive(self):
        """Victim L3 + L2 hold more unique lines than inclusive L2/L3."""
        n_lines = 150  # > L3 capacity (128), < L2+L3 (160)
        addrs = [i * 64 for i in range(n_lines)]
        results = {}
        for inclusive in (True, False):
            h = self._small(inclusive)
            for a in addrs:
                h.access(a)
            # Second sweep: count DRAM re-misses.
            counts = h.run_trace(addrs)
            results[inclusive] = counts["dram"]
        assert results[False] <= results[True]

    def test_run_trace_counts_sum(self):
        h = self._small(inclusive=True)
        counts = h.run_trace(range(0, 64 * 50, 64))
        assert sum(counts.values()) == 50

    def test_for_cpu_uses_table2_sizes(self):
        h = CacheHierarchy.for_cpu(BROADWELL)
        assert h.l1.capacity_bytes == 32 * 1024
        assert h.l2.capacity_bytes == 256 * 1024
        assert h.inclusive
        h2 = CacheHierarchy.for_cpu(CASCADE_LAKE)
        assert h2.l2.capacity_bytes == 1024 * 1024
        assert not h2.inclusive


class TestAnalyticalHierarchy:
    def test_l1_resident_sequential(self):
        a = AnalyticalHierarchy(BROADWELL)
        levels = a.classify(MemoryStream(16 * 1024, 100, 64, SEQUENTIAL))
        assert levels.l1 == 100

    def test_llc_overflow_goes_to_dram(self):
        a = AnalyticalHierarchy(BROADWELL)
        big = 1024 * 1024 * 1024  # 1 GB
        levels = a.classify(MemoryStream(big, 1000, 64, SEQUENTIAL, locality=0.0))
        assert levels.dram == 1000

    def test_conservation_of_accesses(self):
        a = AnalyticalHierarchy(BROADWELL)
        for pattern in (SEQUENTIAL, RANDOM):
            for footprint in (1024, 10**6, 10**9):
                levels = a.classify(
                    MemoryStream(footprint, 500, 64, pattern, locality=0.3)
                )
                assert levels.total == pytest.approx(500)

    def test_random_locality_reduces_dram(self):
        a = AnalyticalHierarchy(BROADWELL)
        big = 1024**3
        cold = a.classify(MemoryStream(big, 1000, 128, RANDOM, locality=0.0))
        warm = a.classify(MemoryStream(big, 1000, 128, RANDOM, locality=0.4))
        assert warm.dram < cold.dram

    def test_small_random_table_hits_cache(self):
        """A table under the LLC size (DIN/NCF tables) mostly hits."""
        a = AnalyticalHierarchy(BROADWELL)
        levels = a.classify(
            MemoryStream(20 * 1024 * 1024, 1000, 256, RANDOM, locality=0.2)
        )
        assert levels.dram < 100

    def test_exclusive_l3_effective_capacity(self):
        assert CASCADE_LAKE.l3_effective_kb == 22 * 1024 + 1024
        assert BROADWELL.l3_effective_kb == 40 * 1024

    @given(
        footprint_kb=st.sampled_from([8, 64, 512, 4096, 262144]),
        locality=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_levels_never_negative(self, footprint_kb, locality):
        a = AnalyticalHierarchy(CASCADE_LAKE)
        levels = a.classify(
            MemoryStream(footprint_kb * 1024, 1000, 64, RANDOM, locality=locality)
        )
        assert levels.l1 >= 0 and levels.l2 >= 0
        assert levels.l3 >= 0 and levels.dram >= 0
        assert levels.total == pytest.approx(1000, rel=1e-6)


class TestTraceCrossValidation:
    """The closed-form model should agree with the trace simulator on
    the DRAM-traffic *ordering* of representative embedding streams."""

    def _trace_dram_rate(self, rows, row_bytes, n_accesses, rng):
        h = CacheHierarchy(
            l1_bytes=32 * 1024,
            l2_bytes=256 * 1024,
            l3_bytes=2 * 1024 * 1024,  # scaled-down LLC
            inclusive=True,
        )
        table_bytes = rows * row_bytes
        indices = rng.integers(0, rows, size=n_accesses)
        counts = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
        for idx in indices:
            level = h.access(int(idx) * row_bytes)
            counts[level] += 1
        return counts["dram"] / n_accesses

    def test_bigger_tables_miss_more(self):
        rng = np.random.default_rng(3)
        small = self._trace_dram_rate(1_000, 128, 4000, rng)
        large = self._trace_dram_rate(200_000, 128, 4000, rng)
        assert large > small

    def test_analytical_agrees_on_ordering(self):
        spec = BROADWELL.with_overrides(l3_mb=2.0)
        a = AnalyticalHierarchy(spec)
        small = a.classify(MemoryStream(1_000 * 128, 4000, 128, RANDOM))
        large = a.classify(MemoryStream(200_000 * 128, 4000, 128, RANDOM))
        assert large.dram > small.dram
