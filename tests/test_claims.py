"""Tests for the paper-claim ledger."""

import pytest

from repro.core import PAPER_CLAIMS, Claim, ClaimContext, evaluate_claims


@pytest.fixture(scope="module")
def context():
    return ClaimContext()


class TestLedger:
    def test_ledger_covers_every_figure(self):
        figures = {c.figure for c in PAPER_CLAIMS}
        for fig in ("Fig 3", "Fig 4", "Fig 6", "Fig 8", "Fig 9", "Fig 10",
                    "Fig 11", "Fig 12", "Fig 13", "Fig 14", "Fig 15", "Fig 16"):
            assert fig in figures

    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in PAPER_CLAIMS]
        assert len(ids) == len(set(ids))

    def test_all_claims_hold(self, context):
        results = evaluate_claims(context)
        failures = [r for r in results if not r.passed]
        assert not failures, "\n".join(
            f"{r.claim.claim_id}: {r.measured}" for r in failures
        )

    def test_results_carry_measurements(self, context):
        results = evaluate_claims(context, claims=PAPER_CLAIMS[:2])
        for r in results:
            assert r.measured  # human-readable evidence, never empty

    def test_context_lazy_and_cached(self, context):
        assert context.sweep is context.sweep
        assert context.suite is context.suite

    def test_failing_claim_reported(self, context):
        impossible = Claim(
            claim_id="impossible",
            figure="Fig 0",
            text="nothing is ever this fast",
            check=lambda ctx: (False, "by construction"),
        )
        (result,) = evaluate_claims(context, claims=[impossible])
        assert not result.passed
        assert result.measured == "by construction"
