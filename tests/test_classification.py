"""Tests for the model taxonomy and shifting-bottleneck analysis."""

import pytest

from repro.core import (
    ModelClass,
    SpeedupStudy,
    classify_breakdown,
    classify_profile,
    find_bottleneck_shifts,
    reference_classification,
)
from repro.models import build_all_models, build_model
from repro.runtime import InferenceSession


@pytest.fixture(scope="module")
def models():
    return build_all_models()


class TestClassifier:
    def test_pure_fc_is_mlp_dominated(self):
        assert classify_breakdown({"FC": 0.9, "Relu": 0.1}) == ModelClass.MLP_DOMINATED

    def test_sls_is_embedding_dominated(self):
        assert (
            classify_breakdown({"SparseLengthsSum": 0.7, "FC": 0.3})
            == ModelClass.EMBEDDING_DOMINATED
        )

    def test_attention_family(self):
        assert (
            classify_breakdown({"LocalActivation": 0.5, "Concat": 0.2, "FC": 0.3})
            == ModelClass.ATTENTION_DOMINATED
        )

    def test_no_dominant_mass_is_other(self):
        assert (
            classify_breakdown({"Relu": 0.5, "Sigmoid": 0.5}) == ModelClass.OTHER
        )


class TestReferenceClassification:
    """The prior-work fixed-use-case taxonomy (Broadwell, batch 64)."""

    def test_matches_deeprecsys_labels(self, models):
        labels = reference_classification(models)
        assert labels["ncf"] == ModelClass.MLP_DOMINATED
        assert labels["rm3"] == ModelClass.MLP_DOMINATED
        assert labels["wnd"] == ModelClass.MLP_DOMINATED
        assert labels["mtwnd"] == ModelClass.MLP_DOMINATED
        assert labels["rm1"] == ModelClass.EMBEDDING_DOMINATED
        assert labels["rm2"] == ModelClass.EMBEDDING_DOMINATED
        assert labels["din"] == ModelClass.ATTENTION_DOMINATED
        assert labels["dien"] == ModelClass.ATTENTION_DOMINATED


class TestShiftingBottlenecks:
    @pytest.fixture(scope="class")
    def sweep(self):
        models = {n: build_model(n) for n in ("rm1", "rm3", "wnd")}
        return SpeedupStudy(
            models=models, batch_sizes=[4, 64, 1024]
        ).run()

    def test_rm1_shifts_mlp_to_embedding_on_cpu(self, sweep):
        """The paper's example: RM1 flips between batch 4 and 64."""
        shifts = find_bottleneck_shifts(sweep, models=["rm1"], platforms=["broadwell"])
        assert any(
            s.from_class == ModelClass.MLP_DOMINATED
            and s.to_class == ModelClass.EMBEDDING_DOMINATED
            for s in shifts
        )

    def test_rm3_never_shifts(self, sweep):
        shifts = find_bottleneck_shifts(sweep, models=["rm3"])
        assert shifts == []

    def test_wnd_shifts_on_gpu(self, sweep):
        """WnD: embedding-dominated at small GPU batch, MLP at large."""
        shifts = find_bottleneck_shifts(
            sweep, models=["wnd"], platforms=["gtx1080ti"]
        )
        assert any(
            s.from_class == ModelClass.EMBEDDING_DOMINATED
            and s.to_class == ModelClass.MLP_DOMINATED
            for s in shifts
        )

    def test_classify_profile_end_to_end(self):
        profile = InferenceSession(build_model("rm2"), "broadwell").profile(1024)
        assert classify_profile(profile) == ModelClass.EMBEDDING_DOMINATED
