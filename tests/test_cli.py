"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "bert"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "rm2"])
        assert args.platform == "broadwell"
        assert args.batch == 16


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RM2" in out and "DIEN" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "Broadwell" in out and "Turing" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "rm2", "--platform", "clx"]) == 0
        out = capsys.readouterr().out
        assert "topdown" in out
        assert "SparseLengthsSum" in out

    def test_characterize_gpu(self, capsys):
        assert main(["characterize", "wnd", "--platform", "t4", "--batch", "256"]) == 0
        out = capsys.readouterr().out
        assert "dominant operator" in out
        assert "topdown" not in out  # no PMU events on GPU platforms

    def test_sweep_subset(self, capsys):
        assert main(["sweep", "--models", "ncf", "--batches", "16", "1024"]) == 0
        out = capsys.readouterr().out
        assert "ncf" in out and "t4" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "din", "--platform", "t4", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Concat" in out

    def test_optimal(self, capsys):
        assert main(["optimal", "--batches", "16", "4096"]) == 0
        out = capsys.readouterr().out
        assert "cascade_lake" in out or "t4" in out

    def test_topdown(self, capsys):
        assert main(["topdown", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "retiring" in out and "i-MPKI" in out


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        """The acceptance-criterion invocation, end to end."""
        import collections
        import json

        from repro.models import build_model
        from repro.runtime import InferenceSession

        out = str(tmp_path / "out.trace.json")
        assert main([
            "trace", "--model", "dlrm_rm2", "--platform", "cascade-lake",
            "--batch-size", "64", "-o", out, "--queries", "128", "--no-run",
        ]) == 0
        doc = json.loads(open(out).read())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        for event in events:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event

        # Per-kind span durations reproduce op_time_by_kind exactly.
        sums = collections.defaultdict(float)
        for event in events:
            sums[event["cat"]] += event["args"]["seconds"]
        profile = InferenceSession(
            build_model("dlrm_rm2"), "cascade-lake"
        ).profile(64)
        for kind, expected in profile.op_time_by_kind.items():
            assert abs(sums[kind] - expected) < 1e-9

        # Scheduler metrics rode along in the metrics report.
        metrics = json.loads(open(str(tmp_path / "out.metrics.json")).read())
        names = {r["name"] for r in metrics}
        assert {"scheduler.queue_depth", "scheduler.batch_occupancy",
                "scheduler.query_latency_s"} <= names
        stdout = capsys.readouterr().out
        assert "trace:" in stdout and "scheduler:" in stdout

    def test_trace_unknown_model_exits_cleanly(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit, match="unknown model"):
            main(["trace", "--model", "bert", "-o", str(tmp_path / "x.json")])

    def test_metrics_table(self, capsys):
        assert main([
            "metrics", "--model", "rm1", "--platform", "broadwell",
            "--batch-size", "8", "--queries", "64", "--no-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler.query_latency_s" in out
        assert "pmu.cycles" in out

    def test_metrics_json_and_csv(self, capsys):
        import json

        assert main([
            "metrics", "--model", "rm1", "--platform", "t4",
            "--batch-size", "8", "--queries", "0", "--no-run",
            "--format", "json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert any(r["name"] == "gpusim.kernel_launches" for r in records)

        assert main([
            "metrics", "--model", "rm1", "--platform", "t4",
            "--batch-size", "8", "--queries", "0", "--no-run",
            "--format", "csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("metric,type,labels")


class TestResilienceCommand:
    def test_policy_matrix_table(self, capsys):
        assert main([
            "resilience", "--model", "rm1", "--queries", "250",
            "--seed", "5", "--scenario", "slowdown",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario 'slowdown'" in out
        assert "no faults" in out
        assert "faults, no policy" in out
        assert "faults + hedge" in out
        assert "faults + all" in out
        assert "p99 ms" in out
        assert "injected" in out

    def test_no_fallback_shrinks_matrix(self, capsys):
        assert main([
            "resilience", "--model", "rm1", "--fallback", "none",
            "--queries", "200", "--scenario", "drops",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults + retry" in out
        assert "faults + hedge" not in out  # no standby to hedge to

    def test_trace_export(self, capsys, tmp_path):
        import json

        trace = str(tmp_path / "resilience.trace.json")
        assert main([
            "resilience", "--model", "rm1", "--queries", "200",
            "--scenario", "crash", "--trace", trace,
        ]) == 0
        doc = json.loads(open(trace).read())
        names = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(".batch" in n for n in names)
        assert any(".crash" in n for n in names)
        out = capsys.readouterr().out
        assert "trace:" in out

    def test_unknown_model_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["resilience", "--model", "bert", "--queries", "50"])
