"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "bert"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "rm2"])
        assert args.platform == "broadwell"
        assert args.batch == 16


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RM2" in out and "DIEN" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "Broadwell" in out and "Turing" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "rm2", "--platform", "clx"]) == 0
        out = capsys.readouterr().out
        assert "topdown" in out
        assert "SparseLengthsSum" in out

    def test_characterize_gpu(self, capsys):
        assert main(["characterize", "wnd", "--platform", "t4", "--batch", "256"]) == 0
        out = capsys.readouterr().out
        assert "dominant operator" in out
        assert "topdown" not in out  # no PMU events on GPU platforms

    def test_sweep_subset(self, capsys):
        assert main(["sweep", "--models", "ncf", "--batches", "16", "1024"]) == 0
        out = capsys.readouterr().out
        assert "ncf" in out and "t4" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "din", "--platform", "t4", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Concat" in out

    def test_optimal(self, capsys):
        assert main(["optimal", "--batches", "16", "4096"]) == 0
        out = capsys.readouterr().out
        assert "cascade_lake" in out or "t4" in out

    def test_topdown(self, capsys):
        assert main(["topdown", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "retiring" in out and "i-MPKI" in out
