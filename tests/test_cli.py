"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "bert"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "rm2"])
        assert args.platform == "broadwell"
        assert args.batch == 16


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RM2" in out and "DIEN" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "Broadwell" in out and "Turing" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "rm2", "--platform", "clx"]) == 0
        out = capsys.readouterr().out
        assert "topdown" in out
        assert "SparseLengthsSum" in out

    def test_characterize_gpu(self, capsys):
        assert main(["characterize", "wnd", "--platform", "t4", "--batch", "256"]) == 0
        out = capsys.readouterr().out
        assert "dominant operator" in out
        assert "topdown" not in out  # no PMU events on GPU platforms

    def test_sweep_subset(self, capsys):
        assert main(["sweep", "--models", "ncf", "--batches", "16", "1024"]) == 0
        out = capsys.readouterr().out
        assert "ncf" in out and "t4" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "din", "--platform", "t4", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Concat" in out

    def test_optimal(self, capsys):
        assert main(["optimal", "--batches", "16", "4096"]) == 0
        out = capsys.readouterr().out
        assert "cascade_lake" in out or "t4" in out

    def test_topdown(self, capsys):
        assert main(["topdown", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "retiring" in out and "i-MPKI" in out


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        """The acceptance-criterion invocation, end to end."""
        import collections
        import json

        from repro.models import build_model
        from repro.runtime import InferenceSession

        out = str(tmp_path / "out.trace.json")
        assert main([
            "trace", "--model", "dlrm_rm2", "--platform", "cascade-lake",
            "--batch-size", "64", "-o", out, "--queries", "128", "--no-run",
        ]) == 0
        doc = json.loads(open(out).read())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        for event in events:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event

        # Per-kind span durations reproduce op_time_by_kind exactly.
        sums = collections.defaultdict(float)
        for event in events:
            sums[event["cat"]] += event["args"]["seconds"]
        profile = InferenceSession(
            build_model("dlrm_rm2"), "cascade-lake"
        ).profile(64)
        for kind, expected in profile.op_time_by_kind.items():
            assert abs(sums[kind] - expected) < 1e-9

        # Scheduler metrics rode along in the metrics report.
        metrics = json.loads(open(str(tmp_path / "out.metrics.json")).read())
        names = {r["name"] for r in metrics}
        assert {"scheduler.queue_depth", "scheduler.batch_occupancy",
                "scheduler.query_latency_s"} <= names
        stdout = capsys.readouterr().out
        assert "trace:" in stdout and "scheduler:" in stdout

    def test_trace_unknown_model_exits_cleanly(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit, match="unknown model"):
            main(["trace", "--model", "bert", "-o", str(tmp_path / "x.json")])

    def test_metrics_table(self, capsys):
        assert main([
            "metrics", "--model", "rm1", "--platform", "broadwell",
            "--batch-size", "8", "--queries", "64", "--no-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler.query_latency_s" in out
        assert "pmu.cycles" in out

    def test_metrics_json_and_csv(self, capsys):
        import json

        assert main([
            "metrics", "--model", "rm1", "--platform", "t4",
            "--batch-size", "8", "--queries", "0", "--no-run",
            "--format", "json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert any(r["name"] == "gpusim.kernel_launches" for r in records)

        assert main([
            "metrics", "--model", "rm1", "--platform", "t4",
            "--batch-size", "8", "--queries", "0", "--no-run",
            "--format", "csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("metric,type,labels")


class TestResilienceCommand:
    def test_policy_matrix_table(self, capsys):
        assert main([
            "resilience", "--model", "rm1", "--queries", "250",
            "--seed", "5", "--scenario", "slowdown",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario 'slowdown'" in out
        assert "no faults" in out
        assert "faults, no policy" in out
        assert "faults + hedge" in out
        assert "faults + all" in out
        assert "p99 ms" in out
        assert "injected" in out

    def test_no_fallback_shrinks_matrix(self, capsys):
        assert main([
            "resilience", "--model", "rm1", "--fallback", "none",
            "--queries", "200", "--scenario", "drops",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults + retry" in out
        assert "faults + hedge" not in out  # no standby to hedge to

    def test_trace_export(self, capsys, tmp_path):
        import json

        trace = str(tmp_path / "resilience.trace.json")
        assert main([
            "resilience", "--model", "rm1", "--queries", "200",
            "--scenario", "crash", "--trace", trace,
        ]) == 0
        doc = json.loads(open(trace).read())
        names = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(".batch" in n for n in names)
        assert any(".crash" in n for n in names)
        out = capsys.readouterr().out
        assert "trace:" in out

    def test_unknown_model_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["resilience", "--model", "bert", "--queries", "50"])


class TestLedgerCommands:
    def _record(self, out_dir, split=False, models=("rm1",)):
        argv = [
            "record", "--models", *models, "--platforms", "broadwell",
            "--batch-size", "64", "--queries", "200", "--seed", "2020",
            "--out", str(out_dir),
        ]
        if split:
            argv.append("--split")
        return main(argv)

    def test_record_appends_jsonl(self, capsys, tmp_path):
        assert self._record(tmp_path / "runs") == 0
        out = capsys.readouterr().out
        assert "rm1|broadwell|b64" in out
        assert (tmp_path / "runs" / "ledger.jsonl").exists()

    def test_record_split_writes_per_record_files(self, capsys, tmp_path):
        assert self._record(tmp_path, split=True) == 0
        assert (tmp_path / "rm1_broadwell_b64.json").exists()

    def test_record_unknown_platform_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["record", "--platforms", "tpu", "--out", str(tmp_path)])

    def test_diff_two_paths_clean(self, capsys, tmp_path):
        self._record(tmp_path / "a")
        capsys.readouterr()
        self._record(tmp_path / "b")
        capsys.readouterr()
        assert main([
            "diff", str(tmp_path / "a"), str(tmp_path / "b"),
            "--fail-on-regression",
        ]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_diff_against_flags_perturbed_record(self, capsys, tmp_path):
        import json

        self._record(tmp_path / "base", split=True)
        self._record(tmp_path / "cand", split=True)
        capsys.readouterr()
        path = tmp_path / "cand" / "rm1_broadwell_b64.json"
        doc = json.loads(path.read_text())
        doc["scalars"]["total_seconds"] *= 2.0
        path.write_text(json.dumps(doc))
        assert main([
            "diff", str(tmp_path / "cand"), "--against",
            str(tmp_path / "base"), "--fail-on-regression",
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        # Without the gate flag the same diff is informational.
        assert main([
            "diff", str(tmp_path / "cand"), "--against", str(tmp_path / "base"),
        ]) == 0

    def test_diff_gate_trips_on_coverage_gap(self, capsys, tmp_path):
        self._record(tmp_path / "base", models=("rm1", "ncf"))
        self._record(tmp_path / "cand", models=("rm1",))
        capsys.readouterr()
        assert main([
            "diff", str(tmp_path / "cand"), "--against",
            str(tmp_path / "base"), "--fail-on-regression",
        ]) == 1
        assert "not covered" in capsys.readouterr().out

    def test_diff_json_format(self, capsys, tmp_path):
        import json

        self._record(tmp_path / "a")
        capsys.readouterr()
        assert main([
            "diff", str(tmp_path / "a"), str(tmp_path / "a"),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0

    def test_diff_needs_candidate_or_against(self, tmp_path):
        self._record(tmp_path / "a")
        with pytest.raises(SystemExit):
            main(["diff", str(tmp_path / "a")])

    def test_diff_missing_path_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such"):
            main(["diff", str(tmp_path / "nope"), str(tmp_path / "nope")])

    def test_check_pass_warn_fail_exit_codes(self, capsys, tmp_path):
        self._record(tmp_path / "runs")
        capsys.readouterr()
        rules = tmp_path / "slo.toml"
        rules.write_text(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1.0\n'
        )
        assert main([
            "check", str(tmp_path / "runs"), "--rules", str(rules),
        ]) == 0
        assert "PASS" in capsys.readouterr().out
        rules.write_text(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e-12\n'
            'severity = "warn"\n'
        )
        assert main([
            "check", str(tmp_path / "runs"), "--rules", str(rules),
        ]) == 1
        capsys.readouterr()
        rules.write_text(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e-12\n'
        )
        assert main([
            "check", str(tmp_path / "runs"), "--rules", str(rules),
        ]) == 2
        assert "FAIL" in capsys.readouterr().out

    def test_check_bad_rules_exit_cleanly(self, tmp_path):
        self._record(tmp_path / "runs")
        rules = tmp_path / "bad.toml"
        rules.write_text('[[rule]]\nmetric = "nope"\nmax = 1\n')
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["check", str(tmp_path / "runs"), "--rules", str(rules)])

    def test_committed_ci_gate_passes(self, capsys):
        # The exact gate CI runs, against the committed artifacts.
        assert main([
            "check", "baselines", "--rules", "ci/slo.toml",
        ]) == 0

    def test_sweep_record_dir(self, capsys, tmp_path):
        assert main([
            "sweep", "--models", "rm1", "--batches", "1", "64",
            "--record-dir", str(tmp_path / "led"),
        ]) == 0
        assert "recorded 8 run records" in capsys.readouterr().out
        assert (tmp_path / "led" / "ledger.jsonl").exists()

    def test_resilience_record_dir(self, capsys, tmp_path):
        assert main([
            "resilience", "--model", "rm1", "--queries", "200",
            "--record-dir", str(tmp_path / "led"),
        ]) == 0
        assert "recorded all-policies run" in capsys.readouterr().out
        from repro.ledger import load_records

        records = load_records(tmp_path / "led")
        assert records[0].kind == "resilience"
        assert records[0].has_latency()


class TestTraceSchedulerModes:
    def test_scheduler_mode_exports_batch_spans(self, capsys, tmp_path):
        import json

        out = str(tmp_path / "sched.trace.json")
        assert main([
            "trace", "--scheduler", "--model", "rm1", "--queries", "200",
            "-o", out,
        ]) == 0
        doc = json.loads(open(out).read())
        names = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(".batch" in n for n in names)
        assert "scheduler:" in capsys.readouterr().out

    def test_resilience_mode_exports_fault_spans(self, capsys, tmp_path):
        import json

        out = str(tmp_path / "res.trace.json")
        assert main([
            "trace", "--resilience", "--model", "rm1", "--queries", "200",
            "-o", out,
        ]) == 0
        doc = json.loads(open(out).read())
        names = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(".batch" in n for n in names)
        assert any(".slowdown" in n or ".straggler" in n for n in names)
        assert "injected" in capsys.readouterr().out

    def test_modes_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--scheduler", "--resilience"])
