"""Contract registry + differential fuzz driver.

Covers registry completeness, seeded determinism (same seed -> same
example sequence), corpus serialization/replay, the CLI surface, and
the headline acceptance regression: a deliberate one-term perturbation
of a vectorized evaluator is caught statically by the twin-drift
analyzer AND dynamically by the spec-vs-numeric contract, with a
shrunk repro file serialized to the corpus.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.contracts import (
    CONTRACTS,
    ContractViolation,
    contract_by_name,
)
from repro.analysis.fuzz import (
    MAX_EXAMPLES,
    MIN_EXAMPLES,
    examples_for_budget,
    replay_file,
    run_contract,
    run_fuzz,
)

VEC_CPU = Path("src/repro/uarch/vectorized.py")


class TestRegistry:
    def test_at_least_eight_contracts(self):
        assert len(CONTRACTS) >= 8

    def test_names_unique_and_described(self):
        names = [c.name for c in CONTRACTS]
        assert len(set(names)) == len(names)
        for contract in CONTRACTS:
            assert contract.invariant
            assert contract.cost > 0

    def test_contract_by_name(self):
        assert contract_by_name("lowering_agreement").name == (
            "lowering_agreement"
        )
        with pytest.raises(KeyError):
            contract_by_name("nope")

    def test_expected_oracles_registered(self):
        names = {c.name for c in CONTRACTS}
        assert {
            "lowering_agreement", "optimizer_numerics",
            "spec_numeric_equivalence", "verifier_spec_inference",
            "ledger_byte_stability", "scheduler_conservation",
            "single_shard_colocation", "timeseries_merge_lossless",
        } <= names


class TestBudgeting:
    def test_counts_are_clamped_and_deterministic(self):
        counts = examples_for_budget(60.0, CONTRACTS)
        assert counts == examples_for_budget(60.0, CONTRACTS)
        for name, n in sorted(counts.items()):
            assert MIN_EXAMPLES <= n <= MAX_EXAMPLES, (name, n)

    def test_budget_scales_counts(self):
        small = examples_for_budget(1.0, CONTRACTS)
        large = examples_for_budget(600.0, CONTRACTS)
        assert all(
            small[c.name] <= large[c.name] for c in CONTRACTS
        )

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            examples_for_budget(0.0, CONTRACTS)


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", ["lowering_agreement", "scheduler_conservation",
                 "timeseries_merge_lossless"]
    )
    def test_same_seed_same_example_stream(self, name):
        contract = contract_by_name(name)
        first = run_contract(contract, seed=2020, max_examples=12,
                             corpus_dir=None)
        second = run_contract(contract, seed=2020, max_examples=12,
                              corpus_dir=None)
        assert first.passed and second.passed
        assert first.digest == second.digest
        assert first.examples == second.examples == 12

    def test_different_seed_different_stream(self):
        contract = contract_by_name("lowering_agreement")
        a = run_contract(contract, seed=1, max_examples=12, corpus_dir=None)
        b = run_contract(contract, seed=2, max_examples=12, corpus_dir=None)
        assert a.digest != b.digest

    def test_report_digest_covers_all_contracts(self):
        cheap = [contract_by_name("lowering_agreement"),
                 contract_by_name("timeseries_merge_lossless")]
        report = run_fuzz(budget_s=1.0, seed=7, contracts=cheap,
                          corpus_dir=None)
        assert report.ok
        assert len(report.results) == 2
        assert report.digest  # stable combined digest
        again = run_fuzz(budget_s=1.0, seed=7, contracts=cheap,
                         corpus_dir=None)
        assert report.digest == again.digest


class TestFailurePath:
    def test_violation_shrinks_and_serializes(self, tmp_path):
        # A contract that fails whenever either coordinate is >= 3:
        # hypothesis must shrink to the minimal (3, 0) example and the
        # driver must serialize exactly that.
        from hypothesis import strategies as st

        from repro.analysis.contracts import Contract

        def check(example):
            if example["a"] >= 3 or example["b"] >= 3:
                raise ContractViolation(f"boom on {example}")

        contract = Contract(
            "synthetic_failure", "a and b stay below 3",
            lambda: st.fixed_dictionaries(
                {"a": st.integers(0, 100), "b": st.integers(0, 100)}
            ),
            check, cost=0.001,
        )
        result = run_contract(contract, seed=2020, max_examples=50,
                              corpus_dir=tmp_path)
        assert not result.passed
        shrunk = result.failing_example
        assert shrunk in ({"a": 3, "b": 0}, {"a": 0, "b": 3})
        corpus = tmp_path / "synthetic_failure_2020.json"
        assert result.corpus_file == str(corpus)
        payload = json.loads(corpus.read_text())
        assert payload["contract"] == "synthetic_failure"
        assert payload["seed"] == 2020
        assert payload["example"] == shrunk
        assert "boom" in payload["error"]
        # The serialized example replays to the same violation.
        with pytest.raises(ContractViolation):
            check(payload["example"])

    def test_replay_unknown_contract_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps(
            {"contract": "nope", "seed": 1, "example": {}, "error": "x"}
        ))
        with pytest.raises(KeyError):
            replay_file(path)

    def test_clean_run_writes_no_corpus(self, tmp_path):
        contract = contract_by_name("lowering_agreement")
        result = run_contract(contract, seed=2020, max_examples=6,
                              corpus_dir=tmp_path)
        assert result.passed
        assert list(tmp_path.iterdir()) == []


def _perturbed_profile_cells_cpu():
    """profile_cells_cpu with one memory-model term changed:
    the 0.35 hot-fraction of random traffic becomes 0.350001."""
    source = VEC_CPU.read_text(encoding="utf-8")
    assert "hot * 0.35)" in source
    perturbed_src = source.replace("hot * 0.35)", "hot * 0.350001)")
    namespace = {}
    exec(compile(perturbed_src, str(VEC_CPU), "exec"), namespace)
    return perturbed_src, namespace["profile_cells_cpu"]


class TestPerturbationAcceptance:
    """ISSUE 9 acceptance: one perturbed term is caught both statically
    (twin-drift) and dynamically (spec-vs-numeric contract), with a
    shrunk serialized repro file."""

    def test_static_twin_drift_flags_the_term(self):
        from repro.analysis import analyze_twins

        perturbed_src, _ = _perturbed_profile_cells_cpu()
        report = analyze_twins(
            sources={"repro.uarch.vectorized": perturbed_src}
        )
        rules = sorted(d.rule for d in report)
        assert rules == ["GV201", "GV202"], report.render_text()

    def test_dynamic_contract_catches_it_with_repro_file(
        self, tmp_path, monkeypatch
    ):
        import repro.uarch.vectorized as vec_module
        from repro.runtime.specmode import clear_spec_caches

        perturbed_src, perturbed_fn = _perturbed_profile_cells_cpu()
        contract = contract_by_name("spec_numeric_equivalence")
        clear_spec_caches()
        monkeypatch.setattr(vec_module, "profile_cells_cpu", perturbed_fn)
        try:
            result = run_contract(contract, seed=2020, max_examples=25,
                                  corpus_dir=tmp_path)
        finally:
            monkeypatch.undo()
            # Purge any spec profiles computed with the poisoned
            # evaluator so later tests see clean caches.
            clear_spec_caches()
        assert not result.passed
        assert "drifted" in result.error
        corpus = tmp_path / "spec_numeric_equivalence_2020.json"
        assert corpus.exists()
        payload = json.loads(corpus.read_text())
        # The example is shrunk: hypothesis minimizes toward batch 1 on
        # a CPU platform (only CPU evaluations touch the perturbed
        # term).
        example = payload["example"]
        assert example["platform"] in ("broadwell", "cascade_lake")
        assert example == result.failing_example
        # With the perturbation reverted, the repro file replays clean
        # ("bug fixed" path of replay_file).
        replay_file(corpus)

    def test_baseline_contract_is_clean_again(self):
        # Guard against cache poisoning leaking out of the dynamic test.
        contract = contract_by_name("spec_numeric_equivalence")
        result = run_contract(contract, seed=2020, max_examples=4,
                              corpus_dir=None)
        assert result.passed, result.error


class TestCli:
    def test_fuzz_json_clean(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "fuzz", "--budget", "4", "--seed", "2020", "--json",
            "--corpus-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert len(payload["contracts"]) == len(CONTRACTS)
        assert list(tmp_path.iterdir()) == []

    def test_fuzz_contract_selection(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "fuzz", "--budget", "1", "--seed", "7", "--json",
            "--contract", "lowering_agreement",
            "--contract", "timeseries_merge_lossless",
            "--corpus-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        names = [c["contract"] for c in payload["contracts"]]
        assert names == ["lowering_agreement", "timeseries_merge_lossless"]

    def test_fuzz_unknown_contract_is_usage_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fuzz", "--contract", "nope"])

    def test_fuzz_list(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        for contract in CONTRACTS:
            assert contract.name in out
