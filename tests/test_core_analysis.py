"""Tests for the characterization core: speedup, features, regression, report."""

import numpy as np
import pytest

from repro.core import (
    BASELINE_PLATFORM,
    FEATURE_NAMES,
    SpeedupStudy,
    build_feature_matrix,
    characterize,
    collect_report,
    collect_suite,
    fit_bottleneck_regression,
    fit_linear,
    format_seconds,
    render_grid,
    render_table,
    to_csv,
)
from repro.models import build_all_models, build_model


@pytest.fixture(scope="module")
def small_sweep():
    models = {n: build_model(n) for n in ("ncf", "rm2", "din")}
    study = SpeedupStudy(models=models, batch_sizes=[16, 1024])
    return study.run()


class TestSpeedupStudy:
    def test_baseline_speedup_is_one(self, small_sweep):
        for model in small_sweep.model_names:
            for batch in small_sweep.batch_sizes:
                assert small_sweep.speedup(model, BASELINE_PLATFORM, batch) == 1.0

    def test_all_cells_present(self, small_sweep):
        assert len(small_sweep.profiles) == 3 * 4 * 2

    def test_speedup_series_shape(self, small_sweep):
        series = small_sweep.speedup_series("rm2", "t4")
        assert [b for b, _ in series] == [16, 1024]
        assert all(s > 0 for _, s in series)

    def test_optimal_grid_covers_all_cells(self, small_sweep):
        cells = SpeedupStudy.optimal_platform_grid(small_sweep)
        assert len(cells) == 3 * 2
        for cell in cells:
            # Optimum is at least as fast as the baseline.
            assert cell.speedup >= 1.0
            assert cell.platform in small_sweep.platform_names

    def test_baseline_required(self):
        with pytest.raises(ValueError):
            SpeedupStudy(platform_names=["t4"])

    def test_data_comm_fraction_accessor(self, small_sweep):
        frac = small_sweep.data_comm_fraction("rm2", "gtx1080ti", 1024)
        assert 0 < frac < 1


class TestFeatureMatrix:
    def test_shape(self):
        m = build_feature_matrix([1, 64], models=build_all_models())
        assert m.rows.shape == (16, len(FEATURE_NAMES))
        assert len(m.labels) == 16

    def test_z_normalized(self):
        m = build_feature_matrix([1, 16, 256])
        np.testing.assert_allclose(m.rows.mean(axis=0), 0.0, atol=1e-9)
        stds = m.rows.std(axis=0)
        # Constant columns collapse to zero; everything else is unit.
        assert np.all((np.abs(stds - 1.0) < 1e-9) | (stds < 1e-9))

    def test_batch_feature_varies(self):
        m = build_feature_matrix([1, 4096])
        col = m.column("log2_batch_size")
        assert col.std() > 0

    def test_raw_rows_kept(self):
        m = build_feature_matrix([16])
        idx = m.feature_names.index("num_tables")
        raw_tables = dict(zip([l[0] for l in m.labels], m.raw_rows[:, idx]))
        assert raw_tables["ncf"] == 4.0
        assert raw_tables["rm2"] == 32.0


class TestRegression:
    def test_fit_linear_recovers_exact_model(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + 0 * X[:, 2]
        weights, intercept, r2 = fit_linear(X, y)
        np.testing.assert_allclose(weights, [2.0, -1.0, 0.0], atol=1e-8)
        assert intercept == pytest.approx(0.5)
        assert r2 == pytest.approx(1.0)

    def test_fit_linear_r2_degrades_with_noise(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((300, 2))
        clean = X[:, 0]
        noisy = clean + 3 * rng.standard_normal(300)
        _, _, r2_clean = fit_linear(X, clean)
        _, _, r2_noisy = fit_linear(X, noisy)
        assert r2_clean > r2_noisy

    def test_bottleneck_regression_interface(self):
        m = build_feature_matrix([16, 1024])
        rng = np.random.default_rng(2)
        targets = {"retiring": rng.random(m.num_samples)}
        results = fit_bottleneck_regression(m, targets)
        r = results["retiring"]
        assert set(r.weights) == set(FEATURE_NAMES)
        assert 0 <= r.weight_concentration() <= 1
        assert r.dominant_feature() in FEATURE_NAMES


class TestCollectReports:
    def test_collect_report_fields(self):
        report = collect_report(build_model("rm2"), "broadwell", 16)
        assert report.platform == "Broadwell"
        report.topdown.validate()
        assert report.i_mpki >= 0
        assert 0 <= report.avx_fraction <= 1
        fu = report.fu_usage
        assert sum(fu.values()) == pytest.approx(1.0, abs=1e-6)

    def test_collect_report_rejects_gpu(self):
        with pytest.raises(ValueError):
            collect_report(build_model("rm2"), "t4", 16)

    def test_collect_suite_covers_both_cpus(self):
        models = {"ncf": build_model("ncf")}
        suite = collect_suite(batch_size=16, models=models)
        assert set(suite) == {"broadwell", "cascade_lake"}
        assert set(suite["broadwell"]) == {"ncf"}


class TestCharacterize:
    def test_cpu_report_complete(self):
        report = characterize("rm2", "bdw", 16)
        assert report.microarch is not None
        lines = report.summary_lines()
        assert any("topdown" in l for l in lines)
        assert report.total_seconds > 0

    def test_gpu_report_has_no_microarch(self):
        report = characterize("wnd", "t4", 256)
        assert report.microarch is None
        assert report.operator_breakdown.dominant

    def test_accepts_model_instance(self):
        report = characterize(build_model("ncf"), "clx", 4)
        assert report.profile.model_name == "ncf"


class TestReportRendering:
    def test_render_table_aligned(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "0.125" in text

    def test_render_grid(self):
        text = render_grid(
            ["r1"], ["c1", "c2"], {("r1", "c1"): "A", ("r1", "c2"): "B"}
        )
        assert "A" in text and "B" in text

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert csv.splitlines() == ["a,b", "1,2", "3,4"]

    def test_format_seconds_units(self):
        assert format_seconds(2.0) == "2.00s"
        assert format_seconds(0.0025) == "2.50ms"
        assert format_seconds(2.5e-5) == "25.0us"
