"""Tests for sharded embedding serving (``repro.distserve``).

The load-bearing guarantees:

* **Golden equivalence** — a single-shard (colocated) layout adds
  *exactly* ``0.0`` gather overhead, so the resilient engine with a
  gather model attached reproduces the gather-free path bit-for-bit.
* **Conservation** — lookups partition exactly across shards, and the
  completed/shed/dropped partition holds under every combination of
  random shard-fault plans and gather policies.
* **The headline** — locality-blind placement under a degraded shard
  blows up the p99; locality-aware placement plus replicated reads,
  hedging, and partial gathers bounds it, at a fixed seed.
"""

import numpy as np
import pytest

from repro.distserve import (
    GatherHedgePolicy,
    GatherPolicy,
    LocalityAwarePlacement,
    NetworkModel,
    PartialGatherPolicy,
    ReplicatedReadPolicy,
    RoundRobinPlacement,
    ShardGatherModel,
    ShardHardware,
    ShardLayout,
    build_layout,
    run_shard_matrix,
)
from repro.distserve.scenario import (
    default_shard_scenarios,
    split_shard_kwargs,
    synthesize_shard_plan,
)
from repro.models import build_model
from repro.resilience import (
    CrashWindow,
    FaultPlan,
    Replica,
    ResilientScheduler,
    ServerFaults,
    SlowdownWindow,
)
from repro.runtime import BatchingPolicy
from repro.workloads import ZipfIndices


@pytest.fixture(scope="module")
def rm2():
    return build_model("rm2")


@pytest.fixture(scope="module")
def rm2_stm(rm2):
    from repro.monitor.scenario import service_model_for

    return service_model_for(rm2, "broadwell", 64)


def _blind(model, n=4, **kw):
    return build_layout(
        model, n, placement=RoundRobinPlacement(),
        distribution=ZipfIndices(alpha=1.1), **kw,
    )


def _aware(model, n=4, **kw):
    return build_layout(
        model, n, placement=LocalityAwarePlacement(hot_k=1024),
        distribution=ZipfIndices(alpha=1.1), **kw,
    )


class TestNetworkModel:
    def test_rpc_seconds_composition(self):
        net = NetworkModel()
        req, resp = 1024.0, 4096.0
        expected = (
            2 * net.hop_latency_s
            + net.request_overhead_s
            + net.serialize_seconds(req + resp)
            + net.transfer_seconds(req + resp)
        )
        assert net.rpc_seconds(req, resp) == pytest.approx(expected)

    def test_bandwidth_scale_slows_transfer_only(self):
        net = NetworkModel()
        base = net.rpc_seconds(0.0, 1e6)
        degraded = net.rpc_seconds(0.0, 1e6, bandwidth_scale=0.1)
        assert degraded > base
        extra = degraded - base
        assert extra == pytest.approx(9.0 * net.transfer_seconds(1e6))

    def test_local_is_exactly_zero(self):
        net = NetworkModel.local()
        assert net.is_local
        assert net.rpc_seconds(1e9, 1e9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(hop_latency_s=-1e-6)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gb_s=0.0)

    def test_shard_hardware(self):
        hw = ShardHardware(seconds_per_lookup=1e-8, base_s=4e-6)
        assert hw.lookup_seconds(0) == 0.0
        assert hw.lookup_seconds(100) == pytest.approx(4e-6 + 1e-6)
        assert ShardHardware.local().lookup_seconds(1e9) == 0.0

    def test_from_platform_positive(self):
        from repro.hw.platform import BROADWELL

        hw = ShardHardware.from_platform(BROADWELL, row_bytes=128.0)
        assert hw.seconds_per_lookup > 0.0
        with pytest.raises(ValueError):
            ShardHardware.from_platform(BROADWELL, 128.0, gather_efficiency=0)


class TestPlacement:
    def test_blind_row_is_balanced(self, rm2):
        layout = _blind(rm2)
        masses = [s.lookup_mass for s in layout.shards]
        assert sum(masses) == pytest.approx(1.0)
        assert max(masses) == pytest.approx(min(masses))
        assert layout.memory_imbalance() == pytest.approx(1.0)
        assert all(s.replicated_mass == 0.0 for s in layout.shards)

    def test_aware_row_balanced_with_replicated_hot_set(self, rm2):
        layout = _aware(rm2)
        masses = [s.lookup_mass for s in layout.shards]
        assert sum(masses) == pytest.approx(1.0)
        # partition-cold/replicate-hot keeps expected load balanced...
        assert layout.load_imbalance() == pytest.approx(1.0, abs=1e-9)
        for s in layout.shards:
            # ...while every shard holds a share of the hot set with
            # full redundancy and a cache-resident cost scale.
            assert s.replicated_mass > 0.5
            assert set(s.replica_names) == set(layout.names) - {s.name}
            assert s.hot_work_scale < 1.0

    def test_aware_memory_overhead_is_small(self, rm2):
        blind = _blind(rm2)
        aware = _aware(rm2)
        blind_total = sum(s.memory_bytes for s in blind.shards)
        aware_total = sum(s.memory_bytes for s in aware.shards)
        # The replicated hot set is tiny next to the cold tail.
        assert aware_total < 1.05 * blind_total

    @pytest.mark.parametrize("sharding", ["table", "column"])
    @pytest.mark.parametrize("factory", [_blind, _aware])
    def test_other_axes_mass_accounting(self, rm2, sharding, factory):
        layout = factory(rm2, sharding=sharding)
        masses = [s.lookup_mass for s in layout.shards]
        if sharding == "column":
            # every lookup hits every shard, at 1/N of the work
            assert all(m == pytest.approx(1.0) for m in masses)
            assert all(
                s.work_scale == pytest.approx(0.25) for s in layout.shards
            )
        else:
            assert sum(masses) == pytest.approx(1.0)

    @pytest.mark.parametrize("batch", [1, 7, 64, 256])
    @pytest.mark.parametrize("sharding", ["row", "table", "column"])
    def test_partition_conserves_lookups(self, rm2, batch, sharding):
        layout = _aware(rm2, sharding=sharding)
        parts = layout.partition(batch)
        total = batch * layout.lookups_per_query
        if sharding == "column":
            assert all(p.lookups == total for p in parts)
        else:
            assert sum(p.lookups for p in parts) == total

    def test_single_shard_is_local(self, rm2):
        layout = build_layout(rm2, 1)
        assert layout.shards[0].local
        assert layout.hardware.is_local

    def test_validation(self, rm2):
        with pytest.raises(ValueError):
            build_layout(rm2, 0)
        with pytest.raises(ValueError):
            build_layout(rm2, 4, sharding="diagonal")
        with pytest.raises(ValueError):
            LocalityAwarePlacement(hot_k=0)
        with pytest.raises(ValueError):
            LocalityAwarePlacement(cache_speedup=0.0)

    def test_layout_rejects_unknown_replicas(self, rm2):
        layout = _aware(rm2)
        from dataclasses import replace

        bad = tuple(
            replace(s, replica_names=("shard9",)) for s in layout.shards
        )
        with pytest.raises(ValueError, match="unknown replicas"):
            ShardLayout(
                shards=bad,
                lookups_per_query=layout.lookups_per_query,
                response_bytes_per_lookup=layout.response_bytes_per_lookup,
                hardware=layout.hardware,
            )


def _slowdown_plan(target, mult=8.0, seed=2020):
    return FaultPlan(seed=seed, servers={
        target: ServerFaults(slowdowns=(SlowdownWindow(0.0, 10.0, mult),)),
    })


def _crash_plan(target, seed=2020):
    return FaultPlan(seed=seed, servers={
        target: ServerFaults(crashes=(CrashWindow(0.0, 10.0),)),
    })


class TestGatherModel:
    def test_single_shard_gather_is_exactly_zero(self, rm2):
        gather = ShardGatherModel(build_layout(rm2, 1))
        out = gather.start_run().gather(64, 0.0)
        assert out.seconds == 0.0
        assert out.fanout == 0

    def test_deterministic_across_runs(self, rm2):
        layout = _blind(rm2)
        plan = synthesize_shard_plan(
            7, layout.names, 1.0, slowdown_windows=1,
            slowdown_multiplier=6.0, straggler_probability=0.1,
        )
        gather = ShardGatherModel(layout, fault_plan=plan, seed=7)
        seq_a = [gather.start_run().gather(64, 0.01 * i).seconds
                 for i in range(20)]
        run = gather.start_run()
        # fresh model, same construction -> identical sequence
        gather2 = ShardGatherModel(layout, fault_plan=plan, seed=7)
        run2 = gather2.start_run()
        seq_b = [run2.gather(64, 0.01 * i).seconds for i in range(20)]
        seq_c = [run.gather(64, 0.01 * i).seconds for i in range(20)]
        assert seq_b == seq_c
        # single-gather runs restart the gather-index stream
        assert seq_a[0] == seq_b[0]

    def test_healthy_aware_not_slower_than_blind(self, rm2):
        blind = ShardGatherModel(_blind(rm2)).start_run().gather(64, 0.0)
        aware = ShardGatherModel(_aware(rm2)).start_run().gather(64, 0.0)
        assert aware.seconds <= blind.seconds

    def test_slowdown_inflates_blind_gather(self, rm2):
        layout = _blind(rm2)
        healthy = ShardGatherModel(layout).start_run().gather(64, 0.0)
        slowed = ShardGatherModel(
            layout, fault_plan=_slowdown_plan(layout.hottest().name)
        ).start_run().gather(64, 0.0)
        assert slowed.seconds > 1.5 * healthy.seconds

    def test_replicated_read_masks_slowdown(self, rm2):
        layout = _aware(rm2)
        target = layout.hottest().name
        policy = GatherPolicy(replicate=ReplicatedReadPolicy(replicas=2))
        bare = ShardGatherModel(
            layout, fault_plan=_slowdown_plan(target)
        ).start_run().gather(64, 0.0)
        shielded = ShardGatherModel(
            layout, policy=policy, fault_plan=_slowdown_plan(target)
        ).start_run().gather(64, 0.0)
        assert shielded.seconds < bare.seconds

    def test_crash_without_partial_policy_blocks(self, rm2):
        layout = _blind(rm2)
        target = layout.hottest().name
        run = ShardGatherModel(
            layout, fault_plan=_crash_plan(target)
        ).start_run()
        out = run.gather(64, 1.0)
        assert out.blocked and out.partial
        assert run.counts["blocked_gathers"] == 1
        assert run.counts["blocked_wait_s"] > 0.0

    def test_crash_with_partial_policy_bounds_wait(self, rm2):
        layout = _blind(rm2)
        target = layout.hottest().name
        budget = 3e-3
        policy = GatherPolicy(
            partial=PartialGatherPolicy(wait_budget_s=budget)
        )
        run = ShardGatherModel(
            layout, policy=policy, fault_plan=_crash_plan(target)
        ).start_run()
        out = run.gather(64, 1.0)
        assert out.partial and not out.blocked
        assert out.imputed > 0
        # bounded: the lost piece costs the wait budget, not the
        # crash duration
        healthy = ShardGatherModel(layout).start_run().gather(64, 0.0)
        assert out.seconds <= healthy.seconds + budget

    def test_cached_mode_serves_hot_rows_from_cache(self, rm2):
        layout = _aware(rm2)
        target = layout.hottest().name
        policy = GatherPolicy(
            replicate=ReplicatedReadPolicy(replicas=1),
            partial=PartialGatherPolicy(mode="cached"),
        )
        run = ShardGatherModel(
            layout, policy=policy, fault_plan=_crash_plan(target)
        ).start_run()
        out = run.gather(64, 1.0)
        assert out.cached > 0

    def test_fault_windows_exported(self, rm2):
        layout = _blind(rm2)
        gather = ShardGatherModel(
            layout, fault_plan=_slowdown_plan(layout.hottest().name)
        )
        windows = gather.fault_windows()
        assert windows == [(layout.hottest().name, "slowdown", 0.0, 10.0)]
        from repro.telemetry import TimeSeries

        ts = TimeSeries(window_s=1.0)
        gather.emit_fault_windows(ts)
        names = ts.track_names()
        assert "faults.window_active_s" in names
        assert f"shard.{layout.hottest().name}" in names

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ReplicatedReadPolicy(replicas=0)
        with pytest.raises(ValueError):
            ReplicatedReadPolicy(replicas=2, quorum=3)
        with pytest.raises(ValueError):
            GatherHedgePolicy(delay_s=-1.0)
        with pytest.raises(ValueError):
            PartialGatherPolicy(mode="drop")
        with pytest.raises(ValueError):
            PartialGatherPolicy(wait_budget_s=0.0)
        assert GatherPolicy.none().empty
        assert not GatherPolicy.full().empty


class TestGoldenSingleShard:
    """The bit-identical contract: one shard == no gather model."""

    @pytest.mark.parametrize("seed", [0, 2020])
    def test_scheduler_bit_identical_with_one_shard(self, rm2, rm2_stm,
                                                    seed):
        def run(gather):
            return ResilientScheduler(
                [Replica("broadwell", rm2_stm)],
                BatchingPolicy(max_batch=64),
                seed=seed,
                gather=gather,
            ).run(3000.0, num_queries=400)

        gather = ShardGatherModel(
            build_layout(rm2, 1), policy=GatherPolicy.full(),
            fault_plan=FaultPlan.none(), seed=seed,
        )
        base, sharded = run(None), run(gather)
        assert np.array_equal(base.latencies_s, sharded.latencies_s)
        assert base.batch_sizes == sharded.batch_sizes
        assert sharded.gather_counts == {}

    def test_multi_shard_run_is_reproducible(self, rm2, rm2_stm):
        def run():
            layout = _aware(rm2)
            plan = synthesize_shard_plan(
                2020, layout.names, 0.2, target=layout.hottest().name,
                slowdown_windows=1, slowdown_multiplier=8.0,
                straggler_probability=0.05,
            )
            gather = ShardGatherModel(
                layout, policy=GatherPolicy.full(), fault_plan=plan,
                seed=2020,
            )
            return ResilientScheduler(
                [Replica("broadwell", rm2_stm)],
                BatchingPolicy(max_batch=64),
                seed=2020,
                gather=gather,
            ).run(3000.0, num_queries=400)

        a, b = run(), run()
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert a.gather_counts == b.gather_counts


class TestConservationUnderShardFaults:
    """Satellite: the completed+shed+dropped partition survives every
    gather policy under random shard-fault plans."""

    _POLICIES = [
        GatherPolicy.none(),
        GatherPolicy(hedge=GatherHedgePolicy(delay_s=1e-3)),
        GatherPolicy(replicate=ReplicatedReadPolicy(replicas=2)),
        GatherPolicy(partial=PartialGatherPolicy(mode="cached")),
        GatherPolicy.full(),
    ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("combo", range(len(_POLICIES)))
    def test_partition_holds(self, rm2, rm2_stm, seed, combo):
        layout = _aware(rm2)
        plan = synthesize_shard_plan(
            seed + 50, layout.names, 0.15,
            target=layout.names[seed % len(layout.names)],
            slowdown_windows=1, slowdown_multiplier=6.0, crash_windows=1,
            crash_duration_frac=0.1, straggler_probability=0.08,
            drop_probability=0.05, pcie_windows=1, pcie_scale=0.3,
        )
        gather = ShardGatherModel(
            layout, policy=self._POLICIES[combo], fault_plan=plan,
            seed=seed,
        )
        n = 400
        result = ResilientScheduler(
            [Replica("broadwell", rm2_stm)],
            BatchingPolicy(max_batch=32, batch_timeout_s=0.001),
            seed=seed,
            gather=gather,
        ).run(5000.0, n)
        assert result.queries == n
        assert result.completed + result.shed + result.dropped == n
        assert len(result.latencies_s) == result.completed
        assert result.accounting_ok()
        assert result.gather_counts["gathers"] > 0


class TestShardScenario:
    def test_scenarios_registered_in_shared_table(self):
        from repro.monitor.scenario import (
            SCENARIOS,
            is_shard_scenario,
            replica_scenario_names,
            shard_scenario_names,
        )

        for name in default_shard_scenarios():
            assert name in SCENARIOS
            assert is_shard_scenario(name)
            assert name in shard_scenario_names()
            assert name not in replica_scenario_names()
        assert not is_shard_scenario("slowdown")

    def test_split_shard_kwargs(self):
        is_shard, setup, synth = split_shard_kwargs(
            dict(shard_faults=True, shards=8, alpha=1.2,
                 slowdown_windows=1)
        )
        assert is_shard
        assert setup == {"shards": 8, "alpha": 1.2}
        assert synth == {"slowdown_windows": 1}
        is_shard, setup, synth = split_shard_kwargs(dict(crash_windows=1))
        assert not is_shard and setup == {}

    def test_synthesize_targets_one_shard_rates_everywhere(self):
        names = ["shard0", "shard1", "shard2"]
        plan = synthesize_shard_plan(
            7, names, 1.0, target="shard1", slowdown_windows=1,
            slowdown_multiplier=8.0, straggler_probability=0.05,
        )
        assert plan.servers["shard1"].slowdowns
        assert not plan.servers["shard0"].slowdowns
        for name in names:
            assert plan.servers[name].stragglers.probability == 0.05

    def test_headline_matrix(self, rm2):
        matrix = run_shard_matrix(
            "rm2", "broadwell", "shard_slowdown", queries=1500, seed=2020,
        )
        assert matrix.locality_win()
        single = matrix.row("single-node").p99_ms
        blind = matrix.row("blind").p99_ms
        aware_full = matrix.row("locality+policies").p99_ms
        # fan-out under a degraded shard blows up the tail...
        assert blind > 1.5 * single
        # ...and the full locality stack claws most of it back.
        assert aware_full < 0.75 * blind
        for row in matrix.rows:
            assert row.result.accounting_ok()
        # replicated reads actually fired in the full-policy row
        assert matrix.row("locality+policies").gather_count(
            "replicated_reads"
        ) > 0

    def test_matrix_records_tagged_per_row(self, rm2):
        from repro.distserve import matrix_records

        matrix = run_shard_matrix(
            "rm2", "broadwell", "shard_slowdown", queries=200, seed=2020,
        )
        records = matrix_records(matrix)
        keys = {r.fingerprint.key for r in records}
        assert len(keys) == len(matrix.rows)
        assert any("shard-blind4" in k for k in keys)
        assert any("shard-single1" in k for k in keys)
        for record in records:
            assert record.kind == "shard"
            assert "distserve.mean_fanout" in record.scalars or \
                "layout.shards" in record.scalars

    def test_rejects_replica_scenario(self):
        with pytest.raises(ValueError, match="not a shard scenario"):
            run_shard_matrix("rm2", "broadwell", "slowdown", queries=50)

    def test_monitored_shard_scenario(self):
        from repro.monitor.scenario import run_monitored_scenario

        ms = run_monitored_scenario(
            "rm2", "broadwell", "shard_slowdown", queries=300, seed=2020,
        )
        assert ms.result.accounting_ok()
        assert ms.result.gather_counts["gathers"] > 0
        # shard windows surface through the same fault tracks the
        # replica level uses, so alerting needs no changes
        names = ms.timeseries.track_names()
        assert "faults.window_active_s" in names
        assert any(n.startswith("shard.") for n in names)
        assert ms.fault_windows()
