"""Smoke tests: every example script runs end-to-end.

Each example is executed in-process (imported as a module and driven
through its ``main``) so the suite catches API drift immediately.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, argv):
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_examples_directory_complete(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "heterogeneous_scheduling.py",
            "bottleneck_analysis.py",
            "custom_model.py",
            "capacity_planning.py",
            "resilient_serving.py",
        } <= scripts

    def test_quickstart(self, capsys):
        _run("quickstart.py", ["ncf", "broadwell", "8"])
        out = capsys.readouterr().out
        assert "cross-stack characterization" in out
        assert "operator breakdown" in out

    def test_quickstart_gpu(self, capsys):
        _run("quickstart.py", ["wnd", "t4", "64"])
        out = capsys.readouterr().out
        assert "dominant operator" in out

    def test_bottleneck_analysis(self, capsys):
        _run("bottleneck_analysis.py", ["rm2", "16"])
        out = capsys.readouterr().out
        assert "TopDown characterization" in out
        assert "verdict" in out

    def test_custom_model(self, capsys):
        _run("custom_model.py", [])
        out = capsys.readouterr().out
        assert "twotower" in out
        assert "speedup over Broadwell" in out

    def test_heterogeneous_scheduling(self, capsys):
        _run("heterogeneous_scheduling.py", [])
        out = capsys.readouterr().out
        assert "cross-stack routing" in out
        assert "No single platform wins" in out

    def test_capacity_planning(self, capsys):
        _run("capacity_planning.py", ["rm3", "20"])
        out = capsys.readouterr().out
        assert "Capacity planning" in out
        assert "verdict" in out

    def test_resilient_serving(self, capsys):
        _run("resilient_serving.py", ["800", "7"])
        out = capsys.readouterr().out
        assert "Resilient serving under a GPU slowdown" in out
        assert "faults, no policy" in out
        # The acceptance scenario: at least one policy measurably cuts p99.
        assert "cut p99 by" in out
        assert "deterministic injection" in out

    def test_optimize_and_offload(self, capsys):
        _run("optimize_and_offload.py", ["rm2", "64"])
        out = capsys.readouterr().out
        assert "What-if interventions" in out
        assert "near-memory" in out
