"""Tests for per-query critical-path capture and ``repro explain``.

Pins the tentpole contracts: capture is strictly observational (bit-
identical schedules with capture on or off, across the plain scheduler,
the resilient scheduler, and the sharded gather path), every retained
decomposition sums *exactly* (``==``) to its measured latency, the
reservoir's tail-biased retention is deterministic and bounded, and the
acceptance scenario — the 5x GPU throttle — attributes its p99 to the
fault-correlated service component with a what-if bound consistent with
an actual fault-disabled rerun. The ``repro explain`` CLI surfaces
(text/json, HTML report, Perfetto flow events, ledger records and
attribution diffs) ride along.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import SpeedupStudy
from repro.explain import Explanation, explain_scenario, render_html
from repro.ledger import diff_records, load_records
from repro.models import build_model
from repro.monitor import run_monitored_scenario
from repro.resilience.faults import hashed_uniform
from repro.runtime import BatchingPolicy, QueryScheduler, ServiceTimeModel
from repro.telemetry.chrome_trace import (
    load_chrome_trace,
    querytrace_flow_events,
    write_chrome_trace,
)
from repro.telemetry.querytrace import (
    COMPONENTS,
    AttemptEvent,
    QueryTraceCapture,
    ServiceParts,
    decompose_attempts,
)

QUERIES = 1200
SEED = 2020
THROTTLE = {"slowdown_multiplier": 5.0}


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm2", "rm3")}
    return SpeedupStudy(models=models, batch_sizes=[1, 16, 256, 4096]).run()


@pytest.fixture(scope="module")
def throttle():
    """The acceptance scenario: one 5x GPU-throttle window on rm1/t4."""
    return explain_scenario(
        "rm1", "t4", "slowdown", queries=QUERIES, seed=SEED,
        scenario_overrides=THROTTLE,
    )


@pytest.fixture(scope="module")
def shard_run():
    """The sharded-gather scenario: per-shard annotation must survive."""
    return explain_scenario(
        "rm2", "broadwell", "shard_slowdown", queries=600, seed=SEED,
    )


def _monitored(scenario, *, capture, queries=600, **kwargs):
    return run_monitored_scenario(
        "rm1", "t4", scenario, queries=queries, seed=SEED,
        querytrace=capture, **kwargs,
    )


class TestObservational:
    """Capture on vs off must be bit-identical — the PR 6 contract."""

    def test_plain_scheduler_bit_identical(self, sweep):
        stm = ServiceTimeModel(sweep, "rm3", "t4")
        policy = BatchingPolicy(max_batch=64, batch_timeout_s=0.002)

        def run(capture):
            return QueryScheduler(
                stm, policy, seed=3, querytrace=capture
            ).run(2000, 400)

        base = run(None)
        qt = QueryTraceCapture()
        traced = run(qt)
        assert np.array_equal(base.latencies_s, traced.latencies_s)
        assert base.batch_sizes == traced.batch_sizes
        assert len(qt.records) == len(traced.latencies_s)
        assert all(r.conservation_ok() for r in qt.records.values())

    def test_resilient_scheduler_bit_identical(self):
        base = _monitored("mixed", capture=None, fallback="gtx1080ti")
        qt = QueryTraceCapture()
        traced = _monitored("mixed", capture=qt, fallback="gtx1080ti")
        assert np.array_equal(
            base.result.latencies_s, traced.result.latencies_s
        )
        assert base.result.batch_sizes == traced.result.batch_sizes
        assert base.result.hedges == traced.result.hedges
        assert len(qt.records) == traced.result.completed

    def test_shard_gather_bit_identical(self):
        def run(capture):
            return run_monitored_scenario(
                "rm2", "broadwell", "shard_slowdown",
                queries=400, seed=SEED, querytrace=capture,
            )

        base = run(None)
        qt = QueryTraceCapture()
        traced = run(qt)
        assert np.array_equal(
            base.result.latencies_s, traced.result.latencies_s
        )
        assert base.result.gather_counts == traced.result.gather_counts


class TestConservation:
    """Every decomposition sums exactly to its measured latency."""

    @pytest.mark.parametrize("seed", [7, 123, 2020])
    @pytest.mark.parametrize("scenario,overrides", [
        ("slowdown", THROTTLE),
        ("mixed", None),
    ])
    def test_exact_sum_across_runs(self, scenario, overrides, seed):
        qt = QueryTraceCapture()
        ms = run_monitored_scenario(
            "rm1", "t4", scenario, queries=400, seed=seed,
            querytrace=qt, scenario_overrides=overrides,
        )
        assert len(qt.records) == ms.result.completed
        for rec in qt.records.values():
            assert rec.conservation_ok()
            assert all(rec.components[k] >= 0.0 for k in COMPONENTS)

    def test_intervals_cover_arrival_to_completion(self, throttle):
        exp, _ = throttle
        for rec in exp.records:
            assert rec.intervals[0][1] == rec.arrival
            assert rec.intervals[-1][2] == rec.completion
            for prev, cur in zip(rec.intervals, rec.intervals[1:]):
                assert cur[1] == prev[2]  # contiguous, no gaps/overlap
            assert all(hi > lo for _, lo, hi, _ in rec.intervals)

    @given(
        arrival=st.floats(0.0, 10.0, allow_nan=False),
        queue_w=st.floats(0.0, 1e-2),
        batch_w=st.floats(0.0, 1e-2),
        service_w=st.floats(1e-7, 1e-1),
    )
    @settings(max_examples=200, deadline=None)
    def test_balance_property(self, arrival, queue_w, batch_w, service_w):
        """The residue balancer holds on adversarial float chains."""
        ready = arrival + queue_w
        close = ready + batch_w
        completion = close + service_w
        latency = completion - arrival  # telescoped, ulps of residue
        attempt = AttemptEvent(
            attempt=0, ready=ready, batch_close=close, start=close,
            end=completion, outcome="completed", server="t4",
            server_index=0, lane=0,
            parts=ServiceParts(base_s=service_w),
        )
        comps, _, _ = decompose_attempts(
            arrival, completion, latency, [attempt]
        )
        assert math.fsum(comps[k] for k in COMPONENTS) == latency


class TestReservoir:
    """Tail-biased, deterministic, bounded retention."""

    def _all_latencies(self):
        qt = QueryTraceCapture()
        _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
        return {qid: rec.latency for qid, rec in qt.records.items()}

    def test_threshold_splits_tail_and_sample(self):
        full = self._all_latencies()
        thr = float(np.percentile(sorted(full.values()), 60.0))
        qt = QueryTraceCapture(
            tail_threshold_s=thr, sample_rate=0.05, seed=SEED
        )
        _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
        expected = {
            qid for qid, lat in full.items()
            if lat >= thr or hashed_uniform(SEED, qid) < 0.05
        }
        assert set(qt.records) == expected
        for qid, rec in qt.records.items():
            if rec.latency >= thr:
                assert rec.reason == "tail"
            else:
                assert rec.reason == "sample"
                assert hashed_uniform(SEED, qid) < 0.05
        # Aggregates still cover every completed query.
        assert qt.completed == len(full)

    def test_retention_deterministic(self):
        def retained():
            qt = QueryTraceCapture(tail_threshold_s=0.002, sample_rate=0.1)
            _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
            return {qid: rec.reason for qid, rec in qt.records.items()}

        assert retained() == retained()

    def test_max_queries_cap_keeps_highest_latency(self):
        full = self._all_latencies()
        qt = QueryTraceCapture(max_queries=64)
        _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
        assert len(qt.records) == 64
        assert qt.evicted == len(full) - 64
        kept = np.sort([r.latency for r in qt.records.values()])
        top = np.sort(sorted(full.values()))[-64:]
        assert np.array_equal(kept, top)

    def test_samples_evicted_before_tail(self):
        full = self._all_latencies()
        thr = float(np.percentile(sorted(full.values()), 90.0))
        tail_qids = {qid for qid, lat in full.items() if lat >= thr}
        cap = len(tail_qids) + 8
        qt = QueryTraceCapture(
            tail_threshold_s=thr, sample_rate=1.0, max_queries=cap
        )
        _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
        assert qt.evicted > 0
        retained_tail = {
            qid for qid, rec in qt.records.items() if rec.reason == "tail"
        }
        # Eviction consumed the uniform sample; no tail record was lost.
        assert retained_tail == tail_qids

    def test_aggregates_independent_of_retention(self):
        def totals(**kwargs):
            qt = QueryTraceCapture(**kwargs)
            _monitored("slowdown", capture=qt, scenario_overrides=THROTTLE)
            return qt.component_totals

        assert totals() == totals(max_queries=32)

    def test_validation(self):
        with pytest.raises(ValueError, match="sample_rate"):
            QueryTraceCapture(sample_rate=1.5)
        with pytest.raises(ValueError, match="max_queries"):
            QueryTraceCapture(max_queries=0)


class TestExplanationEngine:
    def test_profile_structure(self, throttle):
        exp, _ = throttle
        assert exp.cutoff(50.0) <= exp.cutoff(95.0) <= exp.cutoff(99.0)
        prof = exp.profile(99.0)
        assert prof["queries"] > 0
        shares = [
            prof["components"][k]["share"] for k in COMPONENTS
        ]
        assert sum(shares) == pytest.approx(1.0)
        assert all(s >= 0.0 for s in shares)

    def test_mean_profile_is_exact_aggregate(self, throttle):
        exp, _ = throttle
        means = exp.capture.mean_components()
        prof = exp.mean_profile()
        for k in COMPONENTS:
            assert prof["components"][k]["seconds"] == means[k]
        assert prof["queries"] == exp.capture.completed

    def test_throttle_attributes_to_fault_correlated_service(self, throttle):
        """The acceptance criterion: the 5x throttle's p99 is dominated
        by a component whose tail seconds overlap the fault window."""
        exp, _ = throttle
        name, top = exp.top_component(99.0)
        assert name == "service"
        assert top["fault_overlap_share"] >= 0.5
        fa = exp.fault_attribution(99.0)
        assert fa["ok"]
        assert fa["excursion_share"] >= 0.5
        assert fa["top_component"] == "service"

    def test_what_if_bound_matches_fault_disabled_rerun(self, throttle):
        """Zeroing fault-window mass must land near the p99 of an
        actual rerun with the throttle disabled (direct-effect bound:
        queueing relief is not re-simulated, so allow a band)."""
        exp, ms = throttle
        wi = exp.what_if("fault_windows", 99.0)
        assert wi["observed_s"] == pytest.approx(
            float(np.percentile(ms.result.latencies_s, 99.0))
        )
        assert wi["bound_s"] < wi["observed_s"]
        disabled = run_monitored_scenario(
            "rm1", "t4", "slowdown", queries=QUERIES, seed=SEED,
            scenario_overrides={"slowdown_multiplier": 1.0},
        )
        actual = float(np.percentile(disabled.result.latencies_s, 99.0))
        assert 0.7 * actual <= wi["bound_s"] <= 1.1 * actual

    def test_what_if_table_sorted_and_bounded(self, throttle):
        exp, _ = throttle
        rows = exp.what_if_table(99.0)
        assert rows
        knobs = [r["component"] for r in rows]
        assert "fault_windows" in knobs
        wins = [r["improvement_s"] for r in rows]
        assert wins == sorted(wins, reverse=True)
        assert all(w >= 0.0 for w in wins)

    def test_what_if_unknown_component(self, throttle):
        exp, _ = throttle
        with pytest.raises(ValueError, match="unknown component"):
            exp.what_if("network_jitter")

    def test_top_queries_ranked(self, throttle):
        exp, _ = throttle
        rows = exp.top_queries(5)
        assert len(rows) == 5
        lats = [r["latency_s"] for r in rows]
        assert lats == sorted(lats, reverse=True)
        assert all(r["dominant"] in COMPONENTS for r in rows)

    def test_attribution_section_flat_floats(self, throttle):
        exp, _ = throttle
        section = exp.attribution_section()
        assert len(section) == 2 * len(COMPONENTS) + 1
        assert all(isinstance(v, float) for v in section.values())
        assert section["p99.service_s"] > 0.0
        assert 0.0 <= section["p99.fault_overlap_share"] <= 1.0

    def test_no_fault_windows_gate_fails(self, throttle):
        exp, ms = throttle
        bare = Explanation(exp.capture, ms.result, fault_windows=())
        fa = bare.fault_attribution(99.0)
        assert not fa["ok"]
        assert fa["excursion_share"] == 0.0

    def test_shard_scenario_annotates_gather_shard(self, shard_run):
        exp, _ = shard_run
        prof = exp.profile(99.0)
        gather = prof["components"]["gather_network"]
        assert gather["seconds"] > 0.0
        assert gather["top_shard"] is not None
        assert gather["top_shard"]["shard"].startswith("shard")
        assert 0.0 < gather["top_shard"]["share"] <= 1.0


class TestFlowEvents:
    def test_trace_round_trips_with_flow_events(self, throttle, tmp_path):
        exp, _ = throttle
        path = tmp_path / "explain.trace.json"
        write_chrome_trace(str(path), [], querytrace=exp.capture)
        doc = load_chrome_trace(str(path))
        phases = {}
        for event in doc["traceEvents"]:
            phases.setdefault(event["ph"], []).append(event)
        retained = len(exp.capture.records)
        assert len(phases["s"]) == retained
        assert len(phases["f"]) == retained
        assert len(phases["t"]) >= retained
        for ph in ("s", "t", "f"):
            assert all("id" in e for e in phases[ph])
        # t/f bind to the *end* of their enclosing slice.
        assert all(e.get("bp") == "e" for e in phases["t"] + phases["f"])

    def test_flow_ids_thread_arrival_to_completion(self, throttle):
        exp, _ = throttle
        events = querytrace_flow_events(exp.capture)
        by_qid = {}
        for event in events:
            if event.get("ph") in ("s", "t", "f"):
                by_qid.setdefault(event["id"], []).append(event)
        rec = exp.records[0]
        chain = sorted(by_qid[rec.qid], key=lambda e: e["ts"])
        assert chain[0]["ph"] == "s"
        assert chain[-1]["ph"] == "f"
        assert chain[0]["ts"] == pytest.approx(rec.arrival * 1e6)
        assert chain[-1]["ts"] == pytest.approx(rec.completion * 1e6)

    def test_validator_rejects_flow_event_without_id(self, tmp_path):
        path = tmp_path / "broken.trace.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"ph": "s", "ts": 0.0, "pid": 3, "tid": 1, "name": "q"},
            ],
        }))
        with pytest.raises(ValueError, match="missing.*id"):
            load_chrome_trace(str(path))


class TestCli:
    CI_ARGS = [
        "explain", "--model", "rm1", "--platform", "t4",
        "--scenario", "slowdown", "--queries", str(QUERIES),
        "--seed", str(SEED), "--slowdown-multiplier", "5.0",
    ]

    def test_golden_run(self, capsys, tmp_path):
        """The CI smoke invocation: profiles, what-if table, report,
        and the fault-attribution gate in one pass."""
        report = tmp_path / "explain.html"
        code = main(self.CI_ARGS + [
            "--what-if", "all", "--report", str(report),
            "--expect-fault-attribution",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "explain: rm1/t4, scenario 'slowdown'" in out
        assert "p99 tail:" in out and "what-if p99 bounds" in out
        assert "injected fault windows:" in out
        assert "fault attribution gate: PASS" in out
        html = report.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html

    def test_json_document(self, capsys):
        code = main(self.CI_ARGS + [
            "--format", "json", "--expect-fault-attribution",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["gate"]["ok"]
        assert doc["fault_attribution"]["ok"]
        assert set(doc["profiles"]) == {"p50", "p95", "p99"}
        assert doc["coverage"]["retained"] <= doc["coverage"]["completed"]
        assert doc["what_if"]

    def test_focused_what_if(self, capsys):
        code = main(self.CI_ARGS + ["--what-if", "service"])
        out = capsys.readouterr().out
        assert code == 0
        assert "what-if zero service:" in out
        assert "queueing relief not re-simulated" in out

    def test_unknown_what_if_knob(self):
        with pytest.raises(SystemExit, match="unknown what-if knob"):
            main(self.CI_ARGS + ["--what-if", "cosmic_rays"])

    def test_gate_fails_without_fault_windows(self, capsys):
        code = main([
            "explain", "--model", "rm1", "--platform", "t4",
            "--scenario", "stragglers", "--queries", "600",
            "--seed", str(SEED), "--expect-fault-attribution",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL: fault attribution gate" in out

    def test_trace_and_record(self, capsys, tmp_path):
        trace = tmp_path / "explain.trace.json"
        ledger = tmp_path / "ledger"
        code = main(self.CI_ARGS + [
            "--trace", str(trace), "--record-dir", str(ledger),
        ])
        assert code == 0
        doc = load_chrome_trace(str(trace))
        assert any(e["ph"] == "s" for e in doc["traceEvents"])
        records = load_records(ledger)
        assert len(records) == 1
        record = records[0]
        assert record.kind == "explain"
        assert record.has_timeseries()
        assert record.attribution is not None
        assert record.attribution["p99.service_s"] > 0.0

    def _record_one(self, tmp_path, name, multiplier):
        ledger = tmp_path / name
        assert main(self.CI_ARGS[:-2] + [
            "--slowdown-multiplier", multiplier,
            "--record-dir", str(ledger),
        ]) == 0
        return load_records(ledger)[0]

    def test_diff_reports_attribution_shift(self, tmp_path):
        """`repro diff` must attribute a throttle change to the
        critical-path component that absorbed it."""
        mild = self._record_one(tmp_path, "mild", "2.0")
        harsh = self._record_one(tmp_path, "harsh", "5.0")
        diff = diff_records(mild, harsh, tolerance=0.05)
        movers = [e for e in diff.entries if e.level == "attribution"]
        assert movers
        assert any(e.significant for e in movers)
        assert any("critical path:" in line for line in diff.attribute())
        # Round-trip: the attribution section survives serialization.
        assert harsh.attribution is not None
        reloaded = type(harsh).from_dict(json.loads(harsh.to_json()))
        assert reloaded.attribution == harsh.attribution

    def test_attribution_level_skipped_with_caveat(self, tmp_path, capsys):
        with_attr = self._record_one(tmp_path, "attr", "5.0")
        bare = with_attr.from_dict(
            {**json.loads(with_attr.to_json()), "attribution": None}
        )
        diff = diff_records(bare, with_attr, tolerance=0.05)
        assert not [e for e in diff.entries if e.level == "attribution"]
        assert any("attribution level skipped" in c for c in diff.caveats)
