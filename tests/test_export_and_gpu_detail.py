"""Tests for result export and GPU time decomposition."""

import json

import pytest

from repro.core import (
    SpeedupStudy,
    collect_suite,
    records_to_json,
    suite_to_records,
    sweep_to_csv,
    sweep_to_records,
)
from repro.gpusim import GpuModel
from repro.hw import GTX_1080_TI, T4
from repro.models import build_model


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("ncf", "rm2")}
    return SpeedupStudy(models=models, batch_sizes=[16, 1024]).run()


class TestSweepExport:
    def test_record_count(self, sweep):
        records = sweep_to_records(sweep)
        assert len(records) == 2 * 4 * 2

    def test_record_fields(self, sweep):
        record = sweep_to_records(sweep)[0]
        for field in (
            "model",
            "platform",
            "batch_size",
            "total_seconds",
            "data_comm_fraction",
            "speedup_over_broadwell",
            "dominant_operator",
        ):
            assert field in record

    def test_csv_parses(self, sweep):
        csv = sweep_to_csv(sweep)
        lines = csv.strip().splitlines()
        header = lines[0].split(",")
        assert len(lines) == 1 + 16
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)

    def test_json_round_trips(self, sweep):
        records = sweep_to_records(sweep)
        parsed = json.loads(records_to_json(records))
        assert len(parsed) == len(records)
        assert parsed[0]["model"] in ("ncf", "rm2")


class TestSuiteExport:
    def test_suite_records(self):
        suite = collect_suite(batch_size=16, models={"rm2": build_model("rm2")})
        records = suite_to_records(suite)
        assert len(records) == 2  # two CPUs
        record = records[0]
        assert 0 <= record["retiring"] <= 1
        assert record["i_mpki"] >= 0
        # JSON-safe (no infinities).
        json.loads(records_to_json(records))

    def test_infinite_ratio_becomes_null(self):
        suite = collect_suite(batch_size=16, models={"dien": build_model("dien")})
        records = suite_to_records(suite)
        for r in records:
            ratio = r["core_to_memory_ratio"]
            assert ratio is None or ratio == pytest.approx(float(ratio))


class TestGpuDecomposition:
    def test_decomposition_sums_to_compute(self):
        gpu = GpuModel(T4)
        profile = gpu.profile_graph(build_model("wnd").build_graph(64))
        decomposition = profile.time_decomposition()
        # launch + binding term per kernel == total op seconds.
        total = sum(decomposition.values())
        assert total == pytest.approx(profile.compute_seconds, rel=1e-9)

    def test_din_launch_heavy_small_batch(self):
        gpu = GpuModel(GTX_1080_TI)
        profile = gpu.profile_graph(build_model("din").build_graph(4))
        decomposition = profile.time_decomposition()
        assert profile.launch_seconds > 0.002  # thousands of launches

    def test_sls_models_memory_heavy_large_batch(self):
        gpu = GpuModel(GTX_1080_TI)
        profile = gpu.profile_graph(build_model("rm2").build_graph(16384))
        decomposition = profile.time_decomposition()
        assert decomposition["memory"] > decomposition["compute"]
