"""Tests for the profiling fast path.

Covers the three tentpole pieces — lazy parameter materialization, the
process-level shared graph cache, and the parallel sweep engine — plus
the stable seeding that replaces salted ``hash()``:

* ``seed_for`` / ``rng_for`` are content digests, cross-checked against
  pinned values (they must survive interpreter restarts and any
  ``PYTHONHASHSEED``);
* ``profile()`` materializes zero parameter arrays;
* lazy ``run()`` is bit-identical to eager construction for every zoo
  model;
* parallel sweeps (thread and process) merge to exactly the serial
  result.
"""

import numpy as np
import pytest

from repro.core import SpeedupStudy
from repro.models import MODEL_FACTORIES, MODEL_ORDER, build_model
from repro.models.ncf import NCF
from repro.ops import (
    FC,
    LazyParam,
    eager_params,
    materialization_count,
    reset_materialization_count,
)
from repro.ops.initializers import rng_for, seed_for
from repro.runtime import (
    InferenceSession,
    bypass_graph_cache,
    clear_graph_cache,
    graph_cache_stats,
)
from repro.runtime.scheduler import ServiceTimeModel
from repro.telemetry.histogram import StreamingHistogram
from repro.workloads import QueryGenerator


class TestStableSeeding:
    """seed_for/rng_for must be process-stable content digests."""

    # Pinned digests: regenerating these from a different interpreter
    # (or a different PYTHONHASHSEED) must give identical values.
    PINNED = {
        ("embedding", 0, 1_000_000, 64): 15855867408537143983,
        ("fc", 512, 256): 6397750586504459111,
        (): 16476032584258269876,
    }

    def test_pinned_digests(self):
        for key, expected in self.PINNED.items():
            assert seed_for(*key) == expected

    def test_pinned_draws(self):
        draws = rng_for("golden", "check").standard_normal(3)
        np.testing.assert_allclose(
            draws,
            [0.8890005886017494, 0.009267219764785993, -0.45565763724315794],
            rtol=0,
            atol=0,
        )

    def test_distinct_keys_distinct_seeds(self):
        assert seed_for("a", 1) != seed_for("a", 2)
        assert seed_for("a", 1) != seed_for("a", "1x")

    def test_repeatable(self):
        assert seed_for("m", "fc", 0) == seed_for("m", "fc", 0)
        a = rng_for("m", "fc", 0).standard_normal(4)
        b = rng_for("m", "fc", 0).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestLazyParams:
    def test_lazy_until_first_access(self):
        p = LazyParam((4, 3), "xavier_uniform", ("t", 3, 4))
        assert not p.is_materialized
        before = materialization_count()
        value = p.materialize()
        assert p.is_materialized
        assert materialization_count() == before + 1
        assert value.shape == (4, 3)
        # Second access returns the cached array without re-counting.
        assert p.materialize() is value
        assert materialization_count() == before + 1

    def test_spec_and_nbytes_do_not_materialize(self):
        p = LazyParam((128, 64), "scaled_normal", ("t", 128, 64))
        assert p.nbytes == 128 * 64 * 4
        assert p.spec.shape == (128, 64)
        assert not p.is_materialized

    def test_adopted_array_is_the_array(self):
        arr = np.ones((2, 5), dtype=np.float32)
        p = LazyParam.from_array(arr)
        assert p.materialize() is arr

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError):
            LazyParam((2, 2), "nonsense", ("k",))

    def test_profile_materializes_nothing(self):
        models = {name: build_model(name) for name in MODEL_ORDER}
        clear_graph_cache()
        reset_materialization_count()
        SpeedupStudy(models=models, batch_sizes=[1, 64]).run()
        assert materialization_count() == 0

    def test_parameter_bytes_spec_based(self):
        fc = FC(64, 32, seed_key="t/fc")
        before = materialization_count()
        assert fc.parameter_bytes == (32 * 64 + 32) * 4
        assert materialization_count() == before

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_lazy_run_matches_eager(self, name):
        feeds = QueryGenerator(build_model(name), seed=7).generate(4)
        lazy_out = InferenceSession(build_model(name), "broadwell").run(feeds)
        with eager_params(), bypass_graph_cache():
            eager_out = InferenceSession(build_model(name), "broadwell").run(feeds)
        assert lazy_out.keys() == eager_out.keys()
        for key in lazy_out:
            np.testing.assert_array_equal(lazy_out[key], eager_out[key])


class TestGraphCache:
    def test_sessions_share_one_graph(self):
        model = build_model("rm1")
        clear_graph_cache()
        cpu = InferenceSession(model, "broadwell")
        gpu = InferenceSession(model, "t4")
        assert cpu.graph(16) is gpu.graph(16)
        stats = graph_cache_stats()
        assert stats.misses == 1
        assert stats.hits >= 1

    def test_equivalent_models_share(self):
        clear_graph_cache()
        g1 = InferenceSession(build_model("ncf"), "broadwell").graph(8)
        g2 = InferenceSession(build_model("ncf"), "cascade_lake").graph(8)
        assert g1 is g2

    def test_same_name_different_config_do_not_alias(self):
        clear_graph_cache()
        default = InferenceSession(NCF(), "broadwell").graph(8)
        narrow = InferenceSession(NCF(mf_dim=32), "broadwell").graph(8)
        assert default is not narrow

    def test_bypass_builds_fresh(self):
        model = build_model("wnd")
        session = InferenceSession(model, "broadwell")
        cached = session.graph(4)
        with bypass_graph_cache():
            assert session.graph(4) is not cached
        assert session.graph(4) is cached


def _profiles_equal(a, b) -> bool:
    fields = ("model_name", "platform_name", "platform_kind", "batch_size")
    if any(getattr(a, f) != getattr(b, f) for f in fields):
        return False
    return (
        a.compute_seconds == b.compute_seconds
        and a.data_comm_seconds == b.data_comm_seconds
        and a.op_time_by_kind == b.op_time_by_kind
        and a.events == b.events
    )


class TestParallelSweep:
    BATCHES = [1, 16, 256]

    def _study(self):
        models = {name: build_model(name) for name in ("ncf", "rm2", "din")}
        return SpeedupStudy(models=models, batch_sizes=self.BATCHES)

    @pytest.mark.parametrize("mode", ["thread", "process", "auto"])
    def test_parallel_matches_serial(self, mode):
        serial = self._study().run()
        parallel = self._study().run(workers=4, mode=mode)
        assert list(serial.profiles) == list(parallel.profiles)
        for key in serial.profiles:
            assert _profiles_equal(serial.profiles[key], parallel.profiles[key])

    def test_workers_one_is_serial(self):
        a = self._study().run()
        b = self._study().run(workers=1)
        assert list(a.profiles) == list(b.profiles)
        for key in a.profiles:
            assert _profiles_equal(a.profiles[key], b.profiles[key])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self._study().run(workers=2, mode="fiber")

    def test_all_zoo_models_process_safe(self):
        # Process mode rebuilds models by name in the workers; every
        # factory model must round-trip to an identical signature.
        for name, factory in MODEL_FACTORIES.items():
            assert factory().graph_signature() == factory().graph_signature(), name

    def _auto_pool_modes(self, study, workers=2):
        from repro import telemetry

        with telemetry.capture() as (_, registry):
            study.run(workers=workers, mode="auto")
        return [
            (m["labels"].get("mode"), m["value"])
            for m in registry.snapshot()
            if m["name"] == "sweep.pool_mode"
        ]

    def test_auto_stays_on_threads_when_serialization_dominates(self):
        # Cell work here (sum of batches = 273) is far below the
        # threshold: pickling models across a process pool would cost
        # more than the profiling itself, so auto must pick threads —
        # and record the decision.
        from repro.core.speedup import PROCESS_POOL_MIN_WORK

        study = self._study()
        assert sum(study.batch_sizes) < PROCESS_POOL_MIN_WORK
        assert self._auto_pool_modes(study) == [("thread", 1.0)]

    def test_auto_picks_processes_above_work_threshold(self, monkeypatch):
        # Lower the threshold instead of profiling a 200k-query cell;
        # the decision reads the module global at run time.
        from repro.core import speedup as speedup_mod

        monkeypatch.setattr(speedup_mod, "PROCESS_POOL_MIN_WORK", 10)
        assert self._auto_pool_modes(self._study()) == [("process", 1.0)]

    def test_auto_serial_run_records_no_pool_mode(self):
        # workers=1 never consults the pool heuristic.
        assert self._auto_pool_modes(self._study(), workers=1) == []


class TestObserveMany:
    def test_matches_looped_observe(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(0.01, size=500)
        looped = StreamingHistogram(exact_cap=0)
        batched = StreamingHistogram(exact_cap=0)
        for v in values:
            looped.observe(float(v))
        batched.observe_many(values)
        assert batched.count == looped.count
        assert batched.total == pytest.approx(looped.total)
        assert batched._counts == looped._counts
        for q in (50, 95, 99):
            assert batched.quantile(q) == pytest.approx(looped.quantile(q))

    def test_exact_mode_preserved(self):
        hist = StreamingHistogram(exact_cap=100)
        hist.observe_many([0.001, 0.002, 0.003])
        assert hist.is_exact
        assert hist.quantile(50) == pytest.approx(0.002)
        hist.observe_many(np.full(200, 0.004))
        assert not hist.is_exact

    def test_empty_is_noop(self):
        hist = StreamingHistogram()
        hist.observe_many([])
        assert hist.count == 0

    def test_rejects_bad_values(self):
        hist = StreamingHistogram()
        with pytest.raises(ValueError):
            hist.observe_many([0.1, -0.2])
        with pytest.raises(ValueError):
            hist.observe_many([0.1, float("nan")])


class TestServiceTimeKnots:
    def test_precomputed_log_interpolation(self):
        import math

        sweep = SpeedupStudy(
            models={"ncf": build_model("ncf")}, batch_sizes=[1, 16, 256]
        ).run()
        model = ServiceTimeModel(sweep, "ncf", "broadwell")
        t1 = sweep.total_seconds("ncf", "broadwell", 1)
        t16 = sweep.total_seconds("ncf", "broadwell", 16)
        # Knot hits are exact; interior points interpolate in log-batch.
        assert model.seconds(16) == pytest.approx(t16)
        frac = (math.log(4) - math.log(1)) / (math.log(16) - math.log(1))
        assert model.seconds(4) == pytest.approx(t1 * (1 - frac) + t16 * frac)
