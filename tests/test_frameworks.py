"""Tests for framework lowering (Caffe2 / TensorFlow vocabularies)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import breakdown_for, framework_comparison
from repro.frameworks import (
    CAFFE2,
    CAFFE2_TO_TF_EQUIVALENTS,
    TENSORFLOW,
    FrameworkLowering,
)
from repro.frameworks.lowering import _validate
from repro.models import build_model
from repro.runtime import InferenceSession


class TestLoweringMechanics:
    def test_unknown_kind_passes_through(self):
        out = CAFFE2.lower({"Exotic": 2.0}, "cpu")
        assert out == {"Exotic": 2.0}

    def test_caffe2_conserves_time(self):
        times = {"FC": 1.0, "SparseLengthsSum": 2.0, "LocalActivation": 3.0}
        for platform_kind in ("cpu", "gpu"):
            lowered = CAFFE2.lower(times, platform_kind)
            assert sum(lowered.values()) == pytest.approx(sum(times.values()))

    def test_tf_overhead_scales_total(self):
        times = {"FC": 1.0}
        lowered = TENSORFLOW.lower(times, "cpu")
        assert sum(lowered.values()) == pytest.approx(1.06)

    def test_sls_splits_into_gather_and_sum(self):
        lowered = TENSORFLOW.lower({"SparseLengthsSum": 1.0}, "cpu")
        assert set(lowered) == {"ResourceGather", "Sum"}
        assert lowered["ResourceGather"] > lowered["Sum"]

    def test_fc_becomes_fusedmatmul(self):
        lowered = TENSORFLOW.lower({"FC": 1.0}, "cpu")
        assert set(lowered) == {"FusedMatMul"}

    def test_local_activation_concat_heavier_on_gpu(self):
        cpu = CAFFE2.lower({"LocalActivation": 1.0}, "cpu")
        gpu = CAFFE2.lower({"LocalActivation": 1.0}, "gpu")
        assert gpu["Concat"] > cpu["Concat"]
        assert gpu["FC"] < cpu["FC"]

    def test_invalid_split_rejected(self):
        bad = FrameworkLowering(
            name="bad",
            cpu_map={"FC": (("A", 0.5), ("B", 0.4))},
            gpu_map={},
        )
        with pytest.raises(ValueError):
            _validate(bad)

    @given(
        st.dictionaries(
            st.sampled_from(
                ["FC", "SparseLengthsSum", "Concat", "RecurrentNetwork",
                 "LocalActivation", "Relu", "DotInteraction"]
            ),
            st.floats(min_value=0.0, max_value=100.0),
            max_size=7,
        ),
        st.sampled_from(["cpu", "gpu"]),
    )
    def test_caffe2_conservation_property(self, times, platform_kind):
        lowered = CAFFE2.lower(times, platform_kind)
        assert sum(lowered.values()) == pytest.approx(sum(times.values()))


class TestFig7:
    """Dominant operators agree across frameworks for DLRM models."""

    @pytest.mark.parametrize("name", ["rm1", "rm2", "rm3"])
    def test_dominant_operator_equivalent(self, name):
        comparison = framework_comparison(build_model(name), "broadwell", 64)
        c2_dom = comparison["caffe2"].dominant
        tf_dom = comparison["tensorflow"].dominant
        assert tf_dom in CAFFE2_TO_TF_EQUIVALENTS[c2_dom]

    def test_shares_normalized(self):
        comparison = framework_comparison(build_model("rm2"), "broadwell", 64)
        for breakdown in comparison.values():
            assert sum(breakdown.shares.values()) == pytest.approx(1.0)

    def test_gpu_comparison_works_too(self):
        comparison = framework_comparison(build_model("rm2"), "t4", 1024)
        assert comparison["caffe2"].platform == "T4"
        assert "ResourceGather" in comparison["tensorflow"].shares


class TestBreakdownFor:
    def test_fig6_shares_from_profile(self):
        session = InferenceSession(build_model("rm2"), "broadwell")
        breakdown = breakdown_for(session.profile(1024))
        assert breakdown.dominant == "SparseLengthsSum"
        assert breakdown.share("SparseLengthsSum") > 0.5
        assert sum(breakdown.shares.values()) == pytest.approx(1.0)

    def test_top_returns_sorted(self):
        session = InferenceSession(build_model("wnd"), "broadwell")
        breakdown = breakdown_for(session.profile(1024))
        top = breakdown.top(3)
        shares = [s for _, s in top]
        assert shares == sorted(shares, reverse=True)
