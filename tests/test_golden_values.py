"""Golden-value regression guards for the calibrated operating point.

`tests/test_paper_shapes.py` pins the *qualitative* claims; this module
pins selected *numbers* (with generous tolerance) so an accidental
constant change that still satisfies the inequalities — but silently
moves the whole landscape — gets flagged. Values were recorded from the
calibrated build documented in EXPERIMENTS.md.
"""

import pytest

from repro.core import SpeedupStudy, collect_report
from repro.models import build_model

REL = 0.25  # +-25% guard band


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm2", "rm3", "din", "dien")}
    return SpeedupStudy(models=models, batch_sizes=[16, 1024, 16384]).run()


class TestGoldenLatencies:
    """Broadwell model-computation latencies at batch 16 (ms)."""

    EXPECTED_MS = {
        "rm2": 1.17,
        "rm3": 2.88,
        "din": 8.6,
        "dien": 2.1,
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED_MS))
    def test_batch16_latency(self, sweep, name):
        measured = sweep.total_seconds(name, "broadwell", 16) * 1e3
        assert measured == pytest.approx(self.EXPECTED_MS[name], rel=REL)


class TestGoldenSpeedups:
    EXPECTED = {
        ("rm3", "t4", 16384): 14.2,
        ("rm3", "gtx1080ti", 16384): 12.8,
        ("rm2", "gtx1080ti", 16384): 3.0,
        ("din", "gtx1080ti", 16384): 4.2,
        ("dien", "t4", 16384): 6.4,
        ("rm3", "cascade_lake", 16): 1.83,
        ("rm2", "cascade_lake", 16): 1.21,
    }

    @pytest.mark.parametrize("key", sorted(EXPECTED))
    def test_speedup_cell(self, sweep, key):
        model, platform, batch = key
        assert sweep.speedup(model, platform, batch) == pytest.approx(
            self.EXPECTED[key], rel=REL
        )


class TestGoldenMicroarch:
    def test_rm2_broadwell_fingerprint(self):
        report = collect_report(build_model("rm2"), "broadwell", 16)
        assert report.topdown.retiring == pytest.approx(0.37, abs=0.08)
        assert report.topdown.bad_speculation == pytest.approx(0.07, abs=0.04)
        assert report.branch_mpki == pytest.approx(5.4, rel=REL)
        assert report.dram_congested_fraction == pytest.approx(0.20, abs=0.08)
        assert report.dsb_limited_fraction == pytest.approx(0.089, rel=REL)

    def test_din_broadwell_fingerprint(self):
        report = collect_report(build_model("din"), "broadwell", 16)
        assert report.i_mpki == pytest.approx(10.2, rel=REL)
        assert report.topdown.frontend_bound == pytest.approx(0.31, abs=0.10)

    def test_rm3_cascade_lake_fingerprint(self):
        report = collect_report(build_model("rm3"), "cascade_lake", 16)
        assert report.core_to_memory_ratio == pytest.approx(0.97, rel=REL)
        assert report.avx_fraction == pytest.approx(0.51, abs=0.08)
