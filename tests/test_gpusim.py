"""Tests for the GPU performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TensorSpec
from repro.hw import GTX_1080_TI, T4
from repro.gpusim import GpuModel, KernelCostModel, PcieModel
from repro.models import build_model
from repro.ops import FC, EmbeddingTable, SparseLengthsSum
from repro.ops.workload import MemoryStream, OpWorkload, RANDOM, SEQUENTIAL


class TestPcieModel:
    def test_latency_floor(self):
        pcie = PcieModel(GTX_1080_TI)
        assert pcie.transfer_seconds(0) == pytest.approx(
            GTX_1080_TI.pcie_latency_us * 1e-6
        )

    def test_bandwidth_dominates_large_transfers(self):
        pcie = PcieModel(GTX_1080_TI)
        one_gb = 1 << 30
        t = pcie.transfer_seconds(one_gb)
        wire = one_gb / (GTX_1080_TI.pcie_bandwidth_gbps * 1e9)
        assert t >= wire

    def test_per_tensor_latency_accumulates(self):
        """RM2's 33 input tensors pay 33 transfer latencies (Fig 4)."""
        pcie = PcieModel(GTX_1080_TI)
        many = pcie.batch_transfer([1024] * 33)
        one = pcie.batch_transfer([1024 * 33])
        assert many.seconds > one.seconds
        assert many.num_transfers == 33

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PcieModel(T4).transfer_seconds(-1)


class TestKernelCostModel:
    def test_occupancy_monotonic_saturating(self):
        km = KernelCostModel(GTX_1080_TI)
        occs = [km.occupancy(n) for n in (1e2, 1e4, 1e6, 1e8)]
        assert occs == sorted(occs)
        assert occs[-1] < 1.0

    def test_launch_floor(self):
        km = KernelCostModel(GTX_1080_TI)
        w = OpWorkload(op_kind="Concat", kernel_launches=750)
        p = km.profile(w)
        assert p.seconds >= 750 * GTX_1080_TI.kernel_launch_us * 1e-6

    def test_small_kernels_low_efficiency(self):
        """Batch-1 GEMMs cannot fill the machine."""
        km = KernelCostModel(GTX_1080_TI)
        fc = FC(2048, 1024, "t")
        small = km.profile(fc.workload([TensorSpec((1, 2048))]))
        large = km.profile(fc.workload([TensorSpec((16384, 2048))]))
        flops_small = 2 * 1 * 2048 * 1024
        flops_large = 2 * 16384 * 2048 * 1024
        assert (flops_large / large.compute_seconds) > 5 * (
            flops_small / small.compute_seconds
        )

    def test_gather_memory_bound(self):
        km = KernelCostModel(GTX_1080_TI)
        table = EmbeddingTable(1_000_000, 32, "t")
        w = SparseLengthsSum(table).workload([TensorSpec((4096, 120), "int64")])
        p = km.profile(w)
        assert p.memory_seconds > p.compute_seconds

    def test_gddr6_serves_gathers_better(self):
        table = EmbeddingTable(1_000_000, 32, "t")
        w = SparseLengthsSum(table).workload([TensorSpec((4096, 120), "int64")])
        pascal = KernelCostModel(GTX_1080_TI).profile(w)
        turing = KernelCostModel(T4).profile(w)
        # Despite 1080 Ti's higher raw bandwidth, GDDR6's better random
        # efficiency keeps T4 in the same league (paper Section IV #4).
        assert turing.memory_seconds < 1.5 * pascal.memory_seconds

    def test_turing_arch_bonus(self):
        km_t4 = KernelCostModel(T4)
        km_gtx = KernelCostModel(GTX_1080_TI)
        assert km_t4.arch_factor > km_gtx.arch_factor

    def test_zero_kernel_view_op_free(self):
        km = KernelCostModel(T4)
        w = OpWorkload(op_kind="Reshape", kernel_launches=0)
        assert km.profile(w).seconds == 0.0


class TestGpuModel:
    def test_profile_graph_totals(self):
        model = build_model("rm1")
        gpu = GpuModel(GTX_1080_TI)
        profile = gpu.profile_graph(model.build_graph(64))
        assert profile.total_seconds == pytest.approx(
            profile.compute_seconds + profile.data_comm_seconds
        )
        assert 0 < profile.data_comm_fraction < 1

    def test_data_comm_fraction_grows_with_batch(self):
        """Fig 4: communication share rises with batch size."""
        model = build_model("rm2")
        gpu = GpuModel(GTX_1080_TI)
        fractions = [
            gpu.profile_graph(model.build_graph(b)).data_comm_fraction
            for b in (16, 1024, 16384)
        ]
        assert fractions[0] < fractions[-1]

    def test_embedding_models_suffer_most_data_comm(self):
        """Fig 4: lookup-heavy models pay the most for input offload."""
        gpu = GpuModel(GTX_1080_TI)
        rm2 = gpu.profile_graph(build_model("rm2").build_graph(4096))
        rm3 = gpu.profile_graph(build_model("rm3").build_graph(4096))
        assert rm2.data_comm_fraction > rm3.data_comm_fraction

    def test_time_by_kind_sums_to_compute(self):
        gpu = GpuModel(T4)
        profile = gpu.profile_graph(build_model("wnd").build_graph(256))
        assert sum(profile.time_by_kind().values()) == pytest.approx(
            profile.compute_seconds
        )

    def test_din_launch_dominated_at_small_batch(self):
        gpu = GpuModel(GTX_1080_TI)
        profile = gpu.profile_graph(build_model("din").build_graph(4))
        assert profile.kernel_launches > 2000

    @given(st.sampled_from([1, 16, 256, 4096]))
    @settings(max_examples=8)
    def test_gpu_time_monotonic_in_batch(self, batch):
        gpu = GpuModel(T4)
        model = build_model("ncf")
        t_small = gpu.profile_graph(model.build_graph(batch)).total_seconds
        t_big = gpu.profile_graph(model.build_graph(batch * 4)).total_seconds
        assert t_big >= t_small * 0.99
