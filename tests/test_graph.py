"""Tests for the graph IR: wiring, validation, execution."""

import numpy as np
import pytest

from repro.graph import Graph, GraphBuilder, GraphError, TensorSpec, execute, execute_traced
from repro.ops import FC, Concat, Relu


def small_graph():
    b = GraphBuilder("t")
    x = b.input("x", (4, 8))
    h = b.apply(FC(8, 16, "g1"), x, name="fc1")
    h = b.apply(Relu(), h, name="relu1")
    out = b.apply(FC(16, 2, "g2"), h, name="fc2")
    b.output(out)
    return b.build(), out


class TestGraphConstruction:
    def test_duplicate_input_name_rejected(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 2)))
        with pytest.raises(GraphError):
            g.add_input("x", TensorSpec((2, 2)))

    def test_duplicate_node_name_rejected(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 8)))
        g.add_node("n", FC(8, 4, "d"), ["x"])
        with pytest.raises(GraphError):
            g.add_node("n", FC(8, 4, "d"), ["x"])

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("n", FC(8, 4, "d"), ["missing"])

    def test_shape_inference_runs_at_wiring(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 8)))
        name = g.add_node("n", FC(8, 4, "d"), ["x"])
        assert g.spec_of(name).shape == (2, 4)

    def test_bad_shapes_rejected_at_wiring(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 7)))
        with pytest.raises(Exception):
            g.add_node("n", FC(8, 4, "d"), ["x"])

    def test_output_must_exist(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.mark_output("nope")

    def test_validate_requires_outputs(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 8)))
        g.add_node("n", FC(8, 4, "d"), ["x"])
        with pytest.raises(GraphError):
            g.validate()

    def test_kinds_in_order(self):
        g, _ = small_graph()
        assert g.kinds() == ["FC", "Relu", "FC"]

    def test_parameter_bytes_positive(self):
        g, _ = small_graph()
        assert g.parameter_bytes == (8 * 16 + 16 + 16 * 2 + 2) * 4


class TestExecution:
    def test_execute_shapes_and_determinism(self):
        g, out = small_graph()
        x = np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32)
        r1 = execute(g, {"x": x})
        r2 = execute(g, {"x": x})
        assert r1[out].shape == (4, 2)
        np.testing.assert_array_equal(r1[out], r2[out])

    def test_missing_feed_rejected(self):
        g, _ = small_graph()
        with pytest.raises(GraphError):
            execute(g, {})

    def test_wrong_feed_shape_rejected(self):
        g, _ = small_graph()
        with pytest.raises(GraphError):
            execute(g, {"x": np.zeros((4, 9), dtype=np.float32)})

    def test_execute_matches_manual_math(self):
        g, out = small_graph()
        x = np.random.default_rng(1).standard_normal((4, 8)).astype(np.float32)
        fc1 = g.node("fc1").op
        fc2 = g.node("fc2").op
        expected = np.maximum(x @ fc1.weight.T + fc1.bias, 0) @ fc2.weight.T + fc2.bias
        result = execute(g, {"x": x})[out]
        np.testing.assert_allclose(result, expected, rtol=1e-5)

    def test_traced_execution_keeps_intermediates(self):
        g, out = small_graph()
        x = np.zeros((4, 8), dtype=np.float32)
        outputs, trace = execute_traced(g, {"x": x})
        assert trace.node_order == ["fc1", "relu1", "fc2"]
        assert trace.output_of("relu1").shape == (4, 16)
        np.testing.assert_array_equal(outputs[out], trace.output_of("fc2"))

    def test_multi_output_graph(self):
        b = GraphBuilder("multi")
        x = b.input("x", (2, 4))
        a = b.apply(FC(4, 4, "a"), x, name="a")
        c = b.apply(Concat(axis=1), [x, a], name="c")
        b.output(a, c)
        g = b.build()
        result = execute(g, {"x": np.ones((2, 4), dtype=np.float32)})
        assert set(result) == {"a", "c"}
        assert result["c"].shape == (2, 8)

    def test_builder_generates_unique_names(self):
        b = GraphBuilder("names")
        x = b.input("x", (2, 4))
        n1 = b.apply(FC(4, 4, "u1"), x)
        n2 = b.apply(FC(4, 4, "u2"), n1)
        assert n1 != n2
