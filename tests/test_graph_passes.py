"""Tests for the graph-optimization passes and fused operators."""

import numpy as np
import pytest

from repro.graph import (
    GraphBuilder,
    execute,
    fuse_elementwise_chains,
    fuse_fc_activations,
    group_sls_into_concat,
    optimize,
)
from repro.hw import BROADWELL, T4
from repro.gpusim import GpuModel
from repro.models import MODEL_ORDER, build_all_models
from repro.ops import (
    FC,
    Add,
    Concat,
    EmbeddingTable,
    FusedElementwise,
    FusedFC,
    GroupedSparseLengthsSum,
    OpError,
    Relu,
    Sigmoid,
    SparseLengthsSum,
    Tanh,
)
from repro.graph.tensor import TensorSpec
from repro.uarch import CpuModel
from repro.workloads import QueryGenerator


class TestFusedOps:
    def test_fused_fc_matches_unfused(self):
        fc = FC(8, 4, "f")
        fused = FusedFC(fc, Relu())
        x = np.random.default_rng(0).standard_normal((3, 8)).astype(np.float32)
        np.testing.assert_allclose(
            fused.compute([x]), Relu().compute([fc.compute([x])]), rtol=1e-6
        )

    def test_fused_fc_single_kernel(self):
        fused = FusedFC(FC(64, 64, "f"), Sigmoid())
        w = fused.workload([TensorSpec((16, 64))])
        assert w.kernel_launches == 1

    def test_fused_fc_rejects_non_activation(self):
        with pytest.raises(OpError):
            FusedFC(FC(8, 4, "f"), Concat(axis=1))

    def test_grouped_sls_matches_concat_of_sls(self):
        tables = [EmbeddingTable(100, 8, ("g", i)) for i in range(3)]
        grouped = GroupedSparseLengthsSum(tables)
        rng = np.random.default_rng(1)
        indices = [rng.integers(0, 100, (4, 2)) for _ in range(3)]
        expected = np.concatenate(
            [SparseLengthsSum(t).compute([i]) for t, i in zip(tables, indices)],
            axis=1,
        )
        np.testing.assert_allclose(grouped.compute(indices), expected, rtol=1e-6)

    def test_grouped_sls_single_kernel_and_region(self):
        tables = [EmbeddingTable(100, 8, ("g", i)) for i in range(5)]
        grouped = GroupedSparseLengthsSum(tables)
        specs = [TensorSpec((4, 2), "int64")] * 5
        w = grouped.workload(specs)
        assert w.kernel_launches == 1
        assert w.unique_code_blocks == 1

    def test_grouped_sls_requires_uniform_dim(self):
        with pytest.raises(OpError):
            GroupedSparseLengthsSum(
                [EmbeddingTable(10, 4, "a"), EmbeddingTable(10, 8, "b")]
            )


class TestPassMechanics:
    def _fc_chain(self):
        b = GraphBuilder("chain")
        x = b.input("x", (4, 8))
        h = b.apply(FC(8, 16, "a"), x)
        h = b.apply(Relu(), h)
        out = b.apply(FC(16, 2, "b"), h)
        b.output(out)
        return b.build(), x

    def test_fc_fusion_reduces_nodes(self):
        graph, _ = self._fc_chain()
        fused = fuse_fc_activations(graph)
        assert len(fused) == len(graph) - 1
        assert "FusedFC" in fused.kinds()

    def test_fusion_skips_multi_consumer_fc(self):
        b = GraphBuilder("shared")
        x = b.input("x", (4, 8))
        h = b.apply(FC(8, 8, "a"), x, name="fc")
        r = b.apply(Relu(), h, name="relu")
        c = b.apply(Concat(axis=1), [h, r], name="cat")  # fc used twice
        b.output(c)
        graph = b.build()
        fused = fuse_fc_activations(graph)
        assert "FusedFC" not in fused.kinds()

    def test_fusion_skips_output_fc(self):
        b = GraphBuilder("out")
        x = b.input("x", (4, 8))
        h = b.apply(FC(8, 8, "a"), x, name="fc")
        r = b.apply(Relu(), h, name="relu")
        b.output(h, r)  # FC result is itself an output
        graph = b.build()
        assert "FusedFC" not in fuse_fc_activations(graph).kinds()

    def test_sls_grouping_removes_concat(self):
        b = GraphBuilder("sls")
        tables = [EmbeddingTable(50, 4, ("t", i)) for i in range(3)]
        idx = [b.input(f"i{k}", (2, 2), "int64") for k in range(3)]
        pooled = [b.apply(SparseLengthsSum(t), i) for t, i in zip(tables, idx)]
        cat = b.apply(Concat(axis=1), pooled)
        b.output(cat)
        graph = b.build()
        grouped = group_sls_into_concat(graph)
        assert "GroupedSparseLengthsSum" in grouped.kinds()
        assert "Concat" not in grouped.kinds()
        assert len(grouped) == 1

    def test_sls_grouping_keeps_concat_with_extra_inputs(self):
        b = GraphBuilder("mixed")
        tables = [EmbeddingTable(50, 4, ("t", i)) for i in range(2)]
        idx = [b.input(f"i{k}", (2, 2), "int64") for k in range(2)]
        dense = b.input("dense", (2, 3))
        pooled = [b.apply(SparseLengthsSum(t), i) for t, i in zip(tables, idx)]
        cat = b.apply(Concat(axis=1), pooled + [dense])
        b.output(cat)
        graph = b.build()
        grouped = group_sls_into_concat(graph)
        assert "GroupedSparseLengthsSum" in grouped.kinds()
        assert "Concat" in grouped.kinds()
        # Output shape unchanged.
        assert grouped.spec_of(grouped.output_names[0]).shape == (2, 11)

    def test_no_grouping_for_single_sls(self):
        b = GraphBuilder("single")
        t = EmbeddingTable(50, 4, "t")
        i = b.input("i", (2, 2), "int64")
        p = b.apply(SparseLengthsSum(t), i)
        d = b.input("dense", (2, 3))
        cat = b.apply(Concat(axis=1), [p, d])
        b.output(cat)
        graph = b.build()
        assert "GroupedSparseLengthsSum" not in group_sls_into_concat(graph).kinds()


class TestElementwiseChainFusion:
    """The elementwise-chain pass never fires on the zoo (every zoo
    activation is FC-fed, so FC fusion claims it first) — synthetic
    graphs exercise it."""

    @staticmethod
    def _add_chain(n_tails=1):
        b = GraphBuilder("ew")
        a = b.input("a", (4, 8))
        c = b.input("c", (4, 8))
        h = b.apply(Add(), [a, c], name="add")
        for i, act in enumerate([Relu(), Sigmoid(), Tanh()][:n_tails]):
            h = b.apply(act, h, name=f"act{i}")
        b.output(h)
        return b.build()

    def test_fused_op_matches_unfused(self):
        fused = FusedElementwise(Add(), [Sigmoid(), Tanh()])
        rng = np.random.default_rng(2)
        a = rng.standard_normal((3, 5)).astype(np.float32)
        c = rng.standard_normal((3, 5)).astype(np.float32)
        expected = Tanh().compute([Sigmoid().compute([Add().compute([a, c])])])
        np.testing.assert_allclose(fused.compute([a, c]), expected, rtol=1e-6)

    def test_fused_op_single_kernel_keeps_head_streams(self):
        head = Add()
        fused = FusedElementwise(head, [Relu(), Tanh()])
        specs = [TensorSpec((16, 64)), TensorSpec((16, 64))]
        w = fused.workload(specs)
        hw = head.workload(specs)
        assert w.kernel_launches == 1
        assert w.streams == hw.streams  # tails stay in registers
        assert w.code_bytes == hw.code_bytes + 128 * 2
        # The tails' arithmetic is still accounted for.
        assert w.flops > hw.flops

    def test_fused_op_rejects_bad_shapes(self):
        with pytest.raises(OpError):
            FusedElementwise(FC(8, 4, "f"), [Relu()])
        with pytest.raises(OpError):
            FusedElementwise(Add(), [])
        with pytest.raises(OpError):
            FusedElementwise(Add(), [Concat(axis=1)])

    def test_pass_fuses_add_relu(self):
        graph = self._add_chain(1)
        fused = fuse_elementwise_chains(graph)
        assert len(fused) == len(graph) - 1
        assert "FusedElementwise" in fused.kinds()
        assert "Relu" not in fused.kinds()

    def test_pass_collapses_whole_chain(self):
        graph = self._add_chain(3)
        fused = fuse_elementwise_chains(graph)
        assert len(fused) == 1
        # The fused node takes the head's name (same convention as
        # FusedFC), and the output marker follows it.
        assert fused.output_names == ["add"]

    def test_pass_skips_multi_consumer_head(self):
        b = GraphBuilder("shared")
        a = b.input("a", (4, 8))
        c = b.input("c", (4, 8))
        h = b.apply(Add(), [a, c], name="add")
        r = b.apply(Relu(), h, name="relu")
        cat = b.apply(Concat(axis=1), [h, r], name="cat")
        b.output(cat)
        graph = b.build()
        assert "FusedElementwise" not in fuse_elementwise_chains(graph).kinds()

    def test_pass_skips_output_head(self):
        b = GraphBuilder("out")
        a = b.input("a", (4, 8))
        c = b.input("c", (4, 8))
        h = b.apply(Add(), [a, c], name="add")
        r = b.apply(Relu(), h, name="relu")
        b.output(h, r)
        graph = b.build()
        assert "FusedElementwise" not in fuse_elementwise_chains(graph).kinds()

    def test_pass_survives_verifier_and_execution(self):
        graph = self._add_chain(2)
        optimized = optimize(graph, passes=[fuse_elementwise_chains])
        rng = np.random.default_rng(4)
        feeds = {
            "a": rng.standard_normal((4, 8)).astype(np.float32),
            "c": rng.standard_normal((4, 8)).astype(np.float32),
        }
        (base,) = execute(graph, feeds).values()
        (opt,) = execute(optimized, feeds).values()
        np.testing.assert_allclose(base, opt, rtol=1e-6)

    def test_pass_is_noop_on_zoo(self):
        # Documented behaviour: after FC fusion claims the activations,
        # nothing in the zoo is left for the elementwise pass.
        for name in MODEL_ORDER:
            graph = build_all_models()[name].build_graph(8)
            assert "FusedElementwise" not in optimize(graph).kinds()


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_optimized_graph_matches(self, name):
        model = build_all_models()[name]
        graph = model.build_graph(8)
        optimized = optimize(graph)
        feeds = QueryGenerator(model).generate(8)
        (base,) = execute(graph, feeds).values()
        (opt,) = execute(optimized, feeds).values()
        np.testing.assert_allclose(base, opt, rtol=1e-5, atol=1e-6)

    def test_optimization_never_slower_on_cpu(self):
        models = build_all_models()
        cpu = CpuModel(BROADWELL)
        for name in MODEL_ORDER:
            graph = models[name].build_graph(16)
            base = cpu.profile_graph(graph).compute_seconds
            opt = cpu.profile_graph(optimize(graph)).compute_seconds
            assert opt <= base * 1.02

    def test_wnd_gpu_small_batch_gains_most(self):
        """Horizontal SLS fusion removes 26 kernel launches + gather
        latencies — the exact overhead that made WnD SLS-bound at small
        batch on GPUs (Fig 6)."""
        model = build_all_models()["wnd"]
        graph = model.build_graph(16)
        gpu = GpuModel(T4)
        base = gpu.profile_graph(graph).total_seconds
        opt = gpu.profile_graph(optimize(graph)).total_seconds
        assert opt < 0.7 * base


class TestBrokenPassCaught:
    """optimize() re-verifies its final graph: a pass that corrupts specs,
    drops outputs, or leaves dangling edges is rejected, not deployed."""

    @staticmethod
    def _graph():
        b = GraphBuilder("victim")
        x = b.input("x", (8, 16))
        h = b.apply(FC(16, 8, "fc0"), x)
        b.output(b.apply(Relu(), h))
        return b.build()

    def test_stale_spec_pass_raises(self):
        from repro.analysis import GraphVerifyError

        def corrupt_specs(graph):
            import dataclasses

            rebuilt = graph.__class__(graph.name)
            for name, spec in graph.input_specs.items():
                rebuilt.add_input(name, spec)
            for node in graph.nodes:
                bad = dataclasses.replace(
                    node, output_spec=TensorSpec((8, 99))
                )
                rebuilt._nodes[node.name] = bad
                rebuilt._order.append(node.name)
            for out in graph.output_names:
                rebuilt.mark_output(out)
            return rebuilt

        graph = self._graph()
        with pytest.raises(GraphVerifyError) as exc:
            optimize(graph, passes=[corrupt_specs])
        assert exc.value.report.by_rule("GV104")

    def test_output_dropping_pass_raises(self):
        from repro.analysis import GraphVerifyError

        def drop_outputs(graph):
            pruned = graph.__class__(graph.name)
            for name, spec in graph.input_specs.items():
                pruned.add_input(name, spec)
            for node in graph.nodes:
                pruned._nodes[node.name] = node
                pruned._order.append(node.name)
            return pruned  # never marks outputs

        with pytest.raises(GraphVerifyError):
            optimize(self._graph(), passes=[drop_outputs])

    def test_interface_changing_pass_raises(self):
        from repro.analysis import GraphVerifyError

        def shrink_output(graph):
            b = GraphBuilder(graph.name)
            x = b.input("x", (8, 16))
            b.output(b.apply(FC(16, 4, "fc0"), x))  # 8 -> 4 wide
            return b.build()

        with pytest.raises(GraphVerifyError) as exc:
            optimize(self._graph(), passes=[shrink_output])
        assert exc.value.report.by_rule("GV122")

    def test_identity_pass_ok(self):
        graph = self._graph()
        assert optimize(graph, passes=[lambda g: g]) is graph

    def test_verify_false_skips_checks(self):
        def drop_outputs(graph):
            pruned = graph.__class__(graph.name)
            for name, spec in graph.input_specs.items():
                pruned.add_input(name, spec)
            for node in graph.nodes:
                pruned._nodes[node.name] = node
                pruned._order.append(node.name)
            return pruned

        broken = optimize(self._graph(), passes=[drop_outputs], verify=False)
        assert broken.output_names == []
