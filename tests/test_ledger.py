"""Tests for the run ledger (repro.ledger): records, diffs, SLO rules."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ledger import (
    LATENCY_HISTOGRAM,
    OCCUPANCY_HISTOGRAM,
    ConfigFingerprint,
    RunLedger,
    RunRecord,
    SchemaVersionError,
    SLO_METRICS,
    diff_against_baselines,
    diff_records,
    evaluate,
    fingerprint_for,
    load_records,
    load_rules,
    merged_histogram,
    parse_rules,
    platform_key,
    record_run,
    record_schedule,
    record_sweep,
)
from repro.telemetry import StreamingHistogram

BASELINES_DIR = Path(__file__).resolve().parent.parent / "baselines"


@pytest.fixture(scope="module")
def serve_record():
    """One full-stack record (profile + scheduler sim), reused read-only."""
    return record_run("rm1", "broadwell", batch_size=64, seed=2020, queries=200)


def _copy(record):
    return RunRecord.from_json(record.to_json())


def _inject_operator_slowdown(record, op, factor=2.0, slot="memory_bound"):
    """Simulate `op` getting `factor`x slower, pressure landing on `slot`."""
    perturbed = _copy(record)
    extra = perturbed.op_seconds[op] * (factor - 1.0)
    perturbed.op_seconds[op] += extra
    perturbed.scalars["total_seconds"] += extra
    if perturbed.topdown is not None:
        shift = 0.2
        perturbed.topdown[slot] += shift
        perturbed.topdown["retiring"] -= 0.75 * shift
        perturbed.topdown["frontend_bound"] -= 0.25 * shift
    return perturbed


class TestFingerprint:
    def test_platform_key_canonicalizes_aliases(self):
        assert platform_key("broadwell") == "broadwell"
        assert platform_key("bdw") == "broadwell"
        assert platform_key("clx") == "cascade_lake"
        assert platform_key("turing") == "t4"

    def test_aliases_produce_matching_fingerprints(self):
        a = fingerprint_for("rm1", "bdw", 64, seed=1)
        b = fingerprint_for("rm1", "broadwell", 64, seed=1)
        assert a.key == b.key == "rm1|broadwell|b64"

    def test_signature_is_structural_not_salted(self):
        a = fingerprint_for("rm1", "broadwell", 64)
        b = fingerprint_for("rm1", "broadwell", 64)
        assert a.graph_signature == b.graph_signature
        c = fingerprint_for("rm2", "broadwell", 64)
        assert c.graph_signature != a.graph_signature

    def test_slug_is_filesystem_safe(self):
        fp = ConfigFingerprint("rm1", "broadwell", 64, 0, "x", "0")
        assert fp.slug == "rm1_broadwell_b64"


class TestRunRecord:
    def test_json_round_trip_is_byte_stable(self, serve_record):
        text = serve_record.to_json()
        restored = RunRecord.from_json(text)
        assert restored.to_json() == text
        assert restored.fingerprint == serve_record.fingerprint
        assert restored.percentile(99.0) == serve_record.percentile(99.0)

    def test_recording_is_deterministic(self, serve_record):
        again = record_run(
            "rm1", "broadwell", batch_size=64, seed=2020, queries=200
        )
        assert again.to_json() == serve_record.to_json()

    def test_carries_every_stack_level(self, serve_record):
        assert serve_record.kind == "serve"
        assert serve_record.scalars["total_seconds"] > 0
        assert serve_record.op_seconds  # operator level
        assert serve_record.topdown is not None  # uarch level
        assert serve_record.has_latency()  # serving level
        assert OCCUPANCY_HISTOGRAM in serve_record.histograms
        assert serve_record.metrics  # telemetry snapshot rides along

    def test_schema_version_bump_rejected_with_clear_error(self, serve_record):
        data = json.loads(serve_record.to_json())
        data["schema_version"] = 99
        with pytest.raises(SchemaVersionError) as err:
            RunRecord.from_dict(data)
        assert "schema version 99" in str(err.value)
        assert str(SCHEMA_VERSION_EXPECTED) in str(err.value)

    def test_missing_schema_version_rejected(self, serve_record):
        data = json.loads(serve_record.to_json())
        del data["schema_version"]
        with pytest.raises(SchemaVersionError):
            RunRecord.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            RunRecord.from_json("{not json")
        with pytest.raises(ValueError, match="object"):
            RunRecord.from_json("[1, 2]")

    def test_profile_only_record_has_no_latency(self):
        rec = record_run("ncf", "broadwell", batch_size=16, queries=0)
        assert rec.kind == "profile"
        assert not rec.has_latency()
        with pytest.raises(KeyError):
            rec.histogram(LATENCY_HISTOGRAM)


SCHEMA_VERSION_EXPECTED = 3  # v3: optional critical-path attribution section


class TestStore:
    def test_append_and_load_jsonl(self, tmp_path, serve_record):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(serve_record)
        ledger.append(serve_record)
        records = ledger.records()
        assert len(records) == 2
        assert records[0].to_json() == serve_record.to_json()

    def test_split_write_and_directory_load(self, tmp_path, serve_record):
        ledger = RunLedger(tmp_path)
        path = ledger.write(serve_record)
        assert path.name == "rm1_broadwell_b64.json"
        records = load_records(tmp_path)
        assert len(records) == 1
        assert records[0].to_json() == serve_record.to_json()

    def test_latest_by_key(self, tmp_path, serve_record):
        ledger = RunLedger(tmp_path)
        ledger.append(serve_record)
        assert ledger.latest("rm1|broadwell|b64") is not None
        assert ledger.latest("nope|x|b1") is None

    def test_missing_and_empty_paths_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            load_records(empty)

    def test_malformed_file_names_offending_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(ValueError, match="bad.json"):
            load_records(tmp_path)


class TestDiff:
    def test_identical_records_diff_clean(self, serve_record):
        diff = diff_records(serve_record, _copy(serve_record))
        assert diff.clean
        assert not diff.significant
        assert not diff.caveats

    def test_flags_synthetic_2x_regression(self, serve_record):
        slow = _inject_operator_slowdown(
            serve_record, "SparseLengthsSum", factor=2.0
        )
        diff = diff_records(serve_record, slow)
        assert not diff.clean
        metrics = {(e.level, e.metric) for e in diff.regressions}
        assert ("end_to_end", "total_seconds") in metrics
        assert ("operator", "SparseLengthsSum") in metrics

    def test_attributes_slowdown_to_op_kind_and_pipeline_level(
        self, serve_record
    ):
        slow = _inject_operator_slowdown(
            serve_record, "SparseLengthsSum", factor=2.0, slot="memory_bound"
        )
        diff = diff_records(serve_record, slow)
        attribution = "\n".join(diff.attribute())
        assert "SparseLengthsSum" in attribution
        assert "memory_bound" in attribution
        levels = {e.level for e in diff.regressions}
        assert {"end_to_end", "operator", "topdown"} <= levels

    def test_silent_under_pure_noise_within_tolerance(self, serve_record):
        rng = np.random.default_rng(42)
        noisy = _copy(serve_record)
        for scope in (noisy.scalars, noisy.op_seconds):
            for key in sorted(scope):
                scope[key] *= 1.0 + float(rng.uniform(-0.02, 0.02))
        diff = diff_records(serve_record, noisy, tolerance=0.05)
        assert diff.clean
        assert not diff.significant

    def test_tolerance_is_configurable(self, serve_record):
        bumped = _copy(serve_record)
        bumped.scalars["total_seconds"] *= 1.08
        assert not diff_records(serve_record, bumped, tolerance=0.05).clean
        assert diff_records(serve_record, bumped, tolerance=0.10).clean

    def test_improvement_is_not_a_regression(self, serve_record):
        faster = _copy(serve_record)
        faster.scalars["total_seconds"] *= 0.5
        diff = diff_records(serve_record, faster)
        assert diff.clean
        assert any(
            e.metric == "total_seconds" for e in diff.improvements
        )

    def test_throughput_drop_is_a_regression(self, serve_record):
        slower = _copy(serve_record)
        slower.scalars["throughput_qps"] *= 0.5
        diff = diff_records(serve_record, slower)
        assert any(e.metric == "throughput_qps" for e in diff.regressions)

    def test_latency_level_from_histogram_state(self, serve_record):
        worse = _copy(serve_record)
        hist = StreamingHistogram()
        base = serve_record.histogram(LATENCY_HISTOGRAM)
        rng = np.random.default_rng(3)
        hist.observe_many(
            np.asarray(
                [base.quantile(float(q)) * 3.0
                 for q in rng.uniform(1, 99, size=200)]
            )
        )
        worse.histograms[LATENCY_HISTOGRAM] = hist.to_state()
        diff = diff_records(serve_record, worse)
        assert any(e.level == "latency" for e in diff.regressions)

    def test_signature_drift_raises_caveat(self, serve_record):
        other = _copy(serve_record)
        object.__setattr__(other.fingerprint, "graph_signature", "deadbeef")
        diff = diff_records(serve_record, other)
        assert any("graph signature drift" in c for c in diff.caveats)

    def test_against_baselines_matching_and_gaps(self, serve_record):
        other = record_run(
            "ncf", "broadwell", batch_size=64, seed=2020, queries=200
        )
        diffs, unmatched = diff_against_baselines(
            [serve_record], [serve_record, other]
        )
        assert len(diffs) == 1 and diffs[0].clean
        assert any("not covered" in u for u in unmatched)
        diffs, unmatched = diff_against_baselines([other], [serve_record])
        assert not diffs
        assert any("no baseline" in u for u in unmatched)

    def test_negative_tolerance_rejected(self, serve_record):
        with pytest.raises(ValueError):
            diff_records(serve_record, serve_record, tolerance=-0.1)

    def test_render_and_json_forms(self, serve_record):
        slow = _inject_operator_slowdown(serve_record, "SparseLengthsSum")
        diff = diff_records(serve_record, slow)
        text = diff.render_text()
        assert "REGRESSION" in text
        payload = json.loads(diff.to_json())
        assert payload["clean"] is False
        assert payload["entries"]


class TestMergedHistogram:
    def test_merge_equals_concatenated_stream(self):
        rng = np.random.default_rng(2020)
        shards = [rng.lognormal(-6, 0.6, size=n) for n in (40, 120, 11)]
        records = []
        for i, shard in enumerate(shards):
            hist = StreamingHistogram()
            hist.observe_many(shard)
            records.append(
                RunRecord(
                    fingerprint=ConfigFingerprint(
                        "rm1", "broadwell", 64, i, "x", "0"
                    ),
                    kind="serve",
                    histograms={LATENCY_HISTOGRAM: hist.to_state()},
                )
            )
        merged = merged_histogram(records)
        combined = np.concatenate(shards)
        assert merged.count == combined.size
        for q in (5, 50, 95, 99):
            assert merged.quantile(q) == pytest.approx(
                float(np.percentile(combined, q)), rel=1e-12
            )

    def test_zero_records_rejected(self):
        with pytest.raises(ValueError):
            merged_histogram([])


def _resilience_record():
    from repro.core import SlaBudget
    from repro.models import build_model
    from repro.resilience import (
        FaultPlan,
        Replica,
        ResiliencePolicy,
        ResilientScheduler,
        RetryPolicy,
        SheddingPolicy,
    )
    from repro.runtime import BatchingPolicy, InferenceSession, ServiceTimeModel

    model = build_model("rm1")
    session = InferenceSession(model, "broadwell")
    stm = ServiceTimeModel.from_profiles(
        [session.profile(b) for b in (1, 16, 64, 128)]
    )
    deadline = max(10.0 * stm.seconds(64), 0.02)
    qps = 0.5 * 64 / stm.seconds(64)
    plan = FaultPlan.synthesize(
        2020, ["broadwell"], 300 / qps,
        slowdown_windows=1, slowdown_multiplier=4.0, drop_probability=0.05,
    )
    policy = ResiliencePolicy(
        retry=RetryPolicy(deadline_s=deadline, max_retries=2),
        shed=SheddingPolicy(deadline_s=deadline),
    )
    scheduler = ResilientScheduler(
        [Replica("broadwell", stm)], BatchingPolicy(max_batch=64),
        resilience=policy, fault_plan=plan, seed=2020,
    )
    result = scheduler.run(qps, num_queries=300)
    return record_schedule(
        result, fingerprint_for(model, "broadwell", 64, 2020),
        max_batch=64, kind="resilience",
    )


class TestSlo:
    def test_rules_file_covering_every_metric_kind(self, tmp_path,
                                                   serve_record):
        """One [[rule]] per supported metric; none may error, and every
        metric must be extractable from at least one record kind."""
        lines = []
        for metric in sorted(SLO_METRICS):
            lines += [
                "[[rule]]",
                f'name = "{metric} bound"',
                f'metric = "{metric}"',
                "max = 1e12",
                "min = -1e12",
                'severity = "warn"',
                "",
            ]
        rules_path = tmp_path / "all.toml"
        rules_path.write_text("\n".join(lines))
        rules = load_rules(rules_path)
        assert len(rules) == len(SLO_METRICS)
        report = evaluate(rules, [serve_record, _resilience_record()])
        assert report.exit_code() == 0
        covered = {
            c.rule.metric for c in report.checks if c.status == "pass"
        }
        assert covered == set(SLO_METRICS)

    def test_fail_warn_pass_exit_codes(self, serve_record):
        passing = parse_rules(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e9\n'
        )
        warning = parse_rules(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e-12\n'
            'severity = "warn"\n'
        )
        failing = parse_rules(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e-12\n'
        )
        assert evaluate(passing, serve_record).exit_code() == 0
        assert evaluate(warning, serve_record).exit_code() == 1
        assert evaluate(failing, serve_record).exit_code() == 2

    def test_absent_metric_is_skipped_not_failed(self):
        profile_only = record_run("ncf", "broadwell", batch_size=16, queries=0)
        rules = parse_rules(
            '[[rule]]\nmetric = "shed_rate"\nmax = 0.0\n'
        )
        report = evaluate(rules, profile_only)
        assert report.exit_code() == 0
        assert report.checks[0].status == "skipped"

    def test_model_platform_filters(self, serve_record):
        rules = parse_rules(
            '[[rule]]\nmetric = "p99_latency_s"\nmax = 1e-12\n'
            'model = "rm*"\nplatform = "t4"\n'
        )
        # Filter excludes broadwell record entirely: no checks at all.
        assert evaluate(rules, serve_record).checks == []

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            parse_rules('[[rule]]\nmetric = "nope"\nmax = 1.0\n')

    def test_rule_without_bounds_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            parse_rules('[[rule]]\nmetric = "ipc"\n')

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_rules('[[rule]]\nmetric = "ipc"\nmin = 1\nfoo = 2\n')

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError, match="no \\[\\[rule\\]\\]"):
            parse_rules("# just a comment\n")

    def test_subset_parser_matches_tomllib(self, monkeypatch):
        import repro.ledger.slo as slo

        if slo.tomllib is None:  # pragma: no cover - py3.10 path
            pytest.skip("tomllib unavailable; fallback is the only parser")
        text = (
            '# header comment\n'
            '[[rule]]\n'
            'name = "tail"\n'
            'metric = "p99_latency_s"\n'
            'max = 0.05  # trailing comment\n'
            'severity = "warn"\n'
            '\n'
            '[[rule]]\n'
            'metric = "ipc"\n'
            'min = 1\n'
            'model = "rm*"\n'
        )
        with_tomllib = slo.parse_rules(text)
        monkeypatch.setattr(slo, "tomllib", None)
        assert slo.parse_rules(text) == with_tomllib


class TestCommittedBaselines:
    """The CI regression gate, demonstrated end to end on baselines/."""

    def test_baselines_exist_for_suite_on_both_cpus(self):
        records = load_records(BASELINES_DIR)
        keys = {r.fingerprint.key for r in records}
        assert len(records) == 16
        for model in ("ncf", "rm1", "rm2", "rm3", "wnd", "mtwnd", "din",
                      "dien"):
            for cpu in ("broadwell", "cascade_lake"):
                assert f"{model}|{cpu}|b64" in keys
        assert all(r.fingerprint.seed == 2020 for r in records)
        assert all(r.fingerprint.batch_size == 64 for r in records)

    def test_fresh_measurement_matches_committed_baselines(self):
        baselines = load_records(BASELINES_DIR)
        fresh = record_run(
            "rm2", "cascade_lake", batch_size=64, seed=2020, queries=300
        )
        diffs, _ = diff_against_baselines([fresh], baselines)
        assert len(diffs) == 1
        assert diffs[0].clean, diffs[0].render_text()
        assert not diffs[0].significant

    def test_gate_fails_on_deliberately_perturbed_record(self):
        baselines = load_records(BASELINES_DIR)
        perturbed = _inject_operator_slowdown(
            baselines[0], max(baselines[0].op_seconds,
                              key=baselines[0].op_seconds.get),
        )
        diffs, _ = diff_against_baselines([perturbed], baselines)
        assert len(diffs) == 1
        assert not diffs[0].clean

    def test_committed_slo_rules_pass_on_baselines(self):
        rules = load_rules(
            BASELINES_DIR.parent / "ci" / "slo.toml"
        )
        report = evaluate(rules, load_records(BASELINES_DIR))
        assert report.exit_code() == 0, report.render_text()


class TestRecordSweep:
    def test_one_record_per_cell(self):
        from repro.core import SpeedupStudy
        from repro.models import build_model

        sweep = SpeedupStudy(
            models={"rm1": build_model("rm1")}, batch_sizes=[1, 64]
        ).run()
        records = record_sweep(sweep, seed=7)
        assert len(records) == 2 * len(sweep.platform_names)
        assert all(r.kind == "profile" for r in records)
        assert all(r.fingerprint.seed == 7 for r in records)
        keys = {r.fingerprint.key for r in records}
        assert "rm1|broadwell|b1" in keys
        assert "rm1|gtx1080ti|b64" in keys
