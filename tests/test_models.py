"""Tests for the eight-model zoo: construction, execution, features."""

import numpy as np
import pytest

from repro.graph import execute
from repro.models import (
    DIEN,
    DIN,
    MODEL_ORDER,
    NCF,
    DLRMConfig,
    MultiTaskWideAndDeep,
    WideAndDeep,
    build_all_models,
    build_model,
    make_rm1,
    make_rm2,
    make_rm3,
)
from repro.workloads import QueryGenerator


@pytest.fixture(scope="module")
def models():
    return build_all_models()


class TestZoo:
    def test_order_has_eight_models(self):
        assert len(MODEL_ORDER) == 8
        assert MODEL_ORDER == ["ncf", "rm1", "rm2", "rm3", "wnd", "mtwnd", "din", "dien"]

    def test_build_model_aliases(self):
        assert build_model("MT-WnD").name == "mtwnd"
        assert build_model("RM2").name == "rm2"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("bert")

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_every_model_executes(self, models, name):
        model = models[name]
        graph = model.build_graph(4)
        feeds = QueryGenerator(model).generate(4)
        out = execute(graph, feeds)
        (result,) = out.values()
        assert result.shape[0] == 4
        assert np.all(np.isfinite(result))

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_scores_are_probabilities(self, models, name):
        model = models[name]
        feeds = QueryGenerator(model).generate(8)
        (result,) = execute(model.build_graph(8), feeds).values()
        assert np.all(result >= 0) and np.all(result <= 1)

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_deterministic_outputs(self, models, name):
        model = models[name]
        feeds = QueryGenerator(model, seed=5).generate(2)
        graph = model.build_graph(2)
        r1 = execute(graph, feeds)
        r2 = execute(graph, feeds)
        for k in r1:
            np.testing.assert_array_equal(r1[k], r2[k])

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_inputs_match_graph(self, models, name):
        model = models[name]
        graph = model.build_graph(4)
        descs = model.input_descriptions(4)
        assert {d.name for d in descs} == set(graph.input_names)
        for d in descs:
            assert graph.spec_of(d.name) == d.spec

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_architecture_features_complete(self, models, name):
        feats = models[name].architecture_features()
        for key in (
            "fc_to_embedding_ratio",
            "fc_top_heaviness",
            "num_tables",
            "lookups_per_table",
            "latent_dim",
            "attention_units",
            "recurrent_steps",
        ):
            assert key in feats
            assert np.isfinite(feats[key])


class TestTableI:
    """Table I architecture insights must hold in the configs."""

    def test_ncf_has_four_tables(self, models):
        assert models["ncf"].total_embedding_tables() == 4

    def test_rm1_rm2_lookups(self, models):
        assert models["rm1"].lookups_per_table() == 80
        assert models["rm2"].lookups_per_table() == 120

    def test_rm2_larger_than_rm1(self, models):
        assert (
            models["rm2"].total_embedding_tables()
            > models["rm1"].total_embedding_tables()
        )

    def test_rm3_fc_heavy(self, models):
        rm3 = models["rm3"].architecture_features()
        rm2 = models["rm2"].architecture_features()
        assert rm3["fc_to_embedding_ratio"] > 10 * rm2["fc_to_embedding_ratio"]

    def test_din_behavior_lookups(self, models):
        assert models["din"].behavior_lookups == 750

    def test_dien_uses_recurrence_not_lookups(self, models):
        din = models["din"]
        dien = models["dien"]
        assert dien.recurrent_steps > 0
        assert dien.sequence_length < din.behavior_lookups

    def test_mtwnd_multiple_objectives(self, models):
        graph = models["mtwnd"].build_graph(4)
        (out_name,) = graph.output_names
        assert graph.spec_of(out_name).shape == (4, models["mtwnd"].num_tasks)

    def test_info_populated(self, models):
        for model in models.values():
            assert model.info.display_name
            assert model.info.application_domain
            assert model.info.architecture_insight


class TestDLRMConfig:
    def test_bottom_mlp_must_match_embedding_dim(self):
        with pytest.raises(ValueError):
            DLRMConfig(
                name="bad",
                num_dense_features=13,
                num_tables=2,
                rows_per_table=100,
                embedding_dim=32,
                lookups_per_table=4,
                bottom_mlp=(64, 16),  # != 32
                top_mlp=(16, 1),
            )

    def test_rm_variants_distinct(self):
        assert make_rm1().config != make_rm2().config != make_rm3().config

    def test_custom_dlrm_builds(self):
        from repro.models.dlrm import DLRM
        from repro.models.config import ModelInfo

        config = DLRMConfig(
            name="tiny",
            num_dense_features=4,
            num_tables=2,
            rows_per_table=100,
            embedding_dim=8,
            lookups_per_table=3,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        info = ModelInfo("tiny", "Tiny", "Test", "None", "test", "test")
        model = DLRM(config, info)
        feeds = QueryGenerator(model).generate(2)
        (out,) = execute(model.build_graph(2), feeds).values()
        assert out.shape == (2, 1)


class TestParameterSharing:
    def test_tables_shared_and_fc_weights_reproducible_across_builds(self):
        model = NCF()
        g2 = model.build_graph(2)
        g4 = model.build_graph(4)
        # Embedding tables are owned by the model: same objects.
        sls2 = next(n.op for n in g2.nodes if n.kind == "SparseLengthsSum")
        sls4 = next(n.op for n in g4.nodes if n.kind == "SparseLengthsSum")
        assert sls2.table.data is sls4.table.data
        # FC weights are rebuilt per graph from stable seed keys: equal values.
        fc2 = next(n.op for n in g2.nodes if n.kind == "FC")
        fc4 = next(n.op for n in g4.nodes if n.kind == "FC")
        np.testing.assert_array_equal(fc2.weight, fc4.weight)

    def test_wnd_and_mtwnd_have_independent_tables(self):
        wnd = WideAndDeep()
        mt = MultiTaskWideAndDeep()
        assert wnd._tables[0].data is not mt._tables[0].data
