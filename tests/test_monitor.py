"""Tests for the windowed serving monitor.

Pins the acceptance scenario — a seeded 5x GPU-throttle window on
rm1/t4 whose p99 excursion and burn-rate alert coincide with the
injected fault window — plus the analysis/burn-rate units, the
fault-off bit-identical guarantee of time-series collection, the
per-replica Perfetto lane layout, and the ``repro monitor`` /
``repro report`` CLI surfaces end to end.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.ledger.slo import SloRule
from repro.monitor import (
    BurnRateConfig,
    classify_regime,
    detect_regime_shifts,
    detect_tail_excursions,
    evaluate_burn_rates,
    run_monitored_scenario,
    scenario_kwargs,
    utilization_series,
    window_error_fractions,
)
from repro.telemetry import TimeSeries, TimeSeriesSummary
from repro.telemetry.chrome_trace import (
    REPLICA_LANE_FAULT,
    REPLICA_LANE_HEDGE,
    REPLICA_LANE_SERVE,
    REPLICA_PID_BASE,
    chrome_trace_document,
)

QUERIES = 1200
SEED = 2020
OVERRIDES = {"slowdown_multiplier": 5.0}


@pytest.fixture(scope="module")
def slowdown_run():
    """The acceptance scenario: one 5x GPU-throttle window on rm1/t4."""
    return run_monitored_scenario(
        "rm1", "t4", "slowdown", queries=QUERIES, seed=SEED,
        scenario_overrides=OVERRIDES,
    )


def _fault_window_indices(ms):
    """All window indices any injected fault window touches."""
    indices = set()
    for start, end, _ in ms.fault_windows():
        first = ms.timeseries.window_index(start)
        last = ms.timeseries.window_index(end)
        indices.update(range(first, last + 1))
    return indices


def _tight_rules():
    return [
        SloRule(
            name="p99-tight", metric="p99_latency_s", max=0.003,
            severity="fail", budget=0.01,
        )
    ]


class TestRegimes:
    def test_classify_boundaries(self):
        assert classify_regime(0.0) == "idle"
        assert classify_regime(0.05) == "light"
        assert classify_regime(0.69) == "light"
        assert classify_regime(0.70) == "busy"
        assert classify_regime(0.95) == "saturated"
        assert classify_regime(2.0) == "saturated"

    def _busy_series(self, rhos):
        ts = TimeSeries(window_s=1.0)
        for i, rho in enumerate(rhos):
            ts.count("arrivals", i + 0.5)  # anchor every window
            if rho:
                ts.count_interval("busy_s", i, i + rho)
        return ts

    def test_shift_needs_class_change_and_delta(self):
        # light -> saturated alerts; a small step inside one class, or
        # a class change under the delta floor, stays quiet.
        ts = self._busy_series([0.4, 0.5, 1.0, 1.0, 0.5])
        alerts = detect_regime_shifts(ts.summary())
        assert [(a.start_window, a.end_window) for a in alerts] == [
            (2, 2), (4, 4)
        ]
        assert "light -> saturated" in alerts[0].detail
        assert not alerts[0].fault_correlated

        quiet = self._busy_series([0.60, 0.75, 0.72, 0.71])
        assert detect_regime_shifts(quiet.summary()) == []

    def test_shift_fault_correlation_with_slack(self):
        ts = self._busy_series([0.4, 0.4, 1.0, 1.0])
        ts.count("faults.slowdown", 1.5)  # window 1 — adjacent to shift
        alerts = detect_regime_shifts(ts.summary())
        assert len(alerts) == 1 and alerts[0].fault_correlated

    def test_utilization_series_shape(self):
        ts = self._busy_series([0.25, 0.5])
        assert utilization_series(ts.summary()) == [
            (0, pytest.approx(0.25)), (1, pytest.approx(0.5))
        ]


class TestTailExcursions:
    def _latency_series(self, window_p99s_ms):
        ts = TimeSeries(window_s=1.0)
        for i, p99 in enumerate(window_p99s_ms):
            values = np.full(100, p99 * 1e-3)
            ts.observe_many("latency_s", np.full(100, i + 0.5), values)
        return ts

    def test_hot_window_flagged_against_median(self):
        ts = self._latency_series([1.0, 1.1, 0.9, 5.0, 1.0, 1.05])
        alerts = detect_tail_excursions(ts.summary())
        assert [(a.start_window, a.end_window) for a in alerts] == [(3, 3)]
        assert alerts[0].value == pytest.approx(5e-3)
        assert not alerts[0].fault_correlated

    def test_fault_slack_window(self):
        ts = self._latency_series([1.0, 1.0, 1.0, 5.0, 1.0])
        # Fault activity one window before the excursion: a batch
        # started inside the fault can settle just after it.
        ts.count("faults.slowdown", 2.5)
        alerts = detect_tail_excursions(ts.summary())
        assert len(alerts) == 1 and alerts[0].fault_correlated

    def test_too_few_windows_is_quiet(self):
        ts = self._latency_series([5.0])
        assert detect_tail_excursions(ts.summary()) == []


class TestBurnRate:
    def _burning_series(self, hot=range(8, 11), windows=20):
        # 1 ms baseline everywhere; hot windows send half the queries
        # to 10 ms — far over a 5 ms bound.
        ts = TimeSeries(window_s=1.0)
        for i in range(windows):
            lat = np.full(100, 1e-3)
            if i in hot:
                lat[:50] = 10e-3
            ts.observe_many("latency_s", np.full(100, i + 0.5), lat)
        return ts

    def _rule(self, **kw):
        base = dict(
            name="p99", metric="p99_latency_s", max=5e-3, severity="fail",
            budget=0.01,
        )
        base.update(kw)
        return SloRule(**base)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BurnRateConfig(fast_lookback=0)
        with pytest.raises(ValueError):
            BurnRateConfig(slow_threshold=0.0)

    def test_exact_fractions_from_live_series(self):
        ts = self._burning_series()
        fractions = window_error_fractions(ts, self._rule())
        assert fractions[0] == 0.0
        assert fractions[8] == pytest.approx(0.5)

    def test_summary_fractions_are_stepped_lower_bounds(self):
        ts = self._burning_series()
        summary = TimeSeriesSummary.from_compact_state(ts.compact_state())
        live = window_error_fractions(ts, self._rule())
        bounded = window_error_fractions(summary, self._rule())
        for i in live:
            assert bounded[i] <= live[i] + 1e-12
        # Half the window over the bound means the stored p50 proves
        # exactly the 0.5 step.
        assert bounded[8] == 0.5

    def test_rule_without_max_rejected_and_skipped(self):
        ts = self._burning_series()
        floor_rule = SloRule(
            name="qps", metric="throughput_qps", min=1.0, severity="warn"
        )
        with pytest.raises(ValueError, match="max"):
            window_error_fractions(ts, floor_rule)
        # evaluate_burn_rates skips it (end-of-run check still covers it).
        assert evaluate_burn_rates(ts, [floor_rule]) == []

    def test_non_latency_metric_skipped(self):
        ts = self._burning_series()
        rule = SloRule(
            name="comm", metric="data_comm_fraction", max=0.5, severity="warn"
        )
        assert evaluate_burn_rates(ts, [rule]) == []

    def test_default_budget_is_percentile_slack(self):
        # Without an explicit budget, a p99 rule gets 1 - 0.99 = 0.01:
        # an error fraction of 0.5 burns 50x, tripping both lookbacks.
        ts = self._burning_series()
        rule = self._rule(budget=None)
        alerts = evaluate_burn_rates(ts, [rule])
        kinds = {a.kind for a in alerts}
        assert kinds == {"fast_burn", "slow_burn"}

    def test_fast_burn_fires_on_hot_windows(self):
        ts = self._burning_series()
        alerts = evaluate_burn_rates(ts, [self._rule()])
        fast = [a for a in alerts if a.kind == "fast_burn"]
        assert len(fast) == 1
        a = fast[0]
        # The 3-window trailing mean covers the hot range plus the
        # lookback tail after it.
        assert a.start_window == 8
        assert a.end_window == 12
        assert a.value == pytest.approx(50.0)
        assert a.severity == "fail"
        assert a.rule == "p99"

    def test_quiet_series_no_alerts(self):
        ts = self._burning_series(hot=())
        assert evaluate_burn_rates(ts, [self._rule()]) == []

    def test_empty_source_no_alerts(self):
        assert evaluate_burn_rates(TimeSeries(window_s=1.0), [self._rule()]) == []


class TestMonitoredScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_kwargs("meteor")

    def test_override_merges(self):
        kw = scenario_kwargs("slowdown", slowdown_multiplier=9.0)
        assert kw["slowdown_multiplier"] == 9.0
        assert kw["slowdown_windows"] == 1

    def test_run_is_deterministic(self, slowdown_run):
        again = run_monitored_scenario(
            "rm1", "t4", "slowdown", queries=QUERIES, seed=SEED,
            scenario_overrides=OVERRIDES,
        )
        assert again.timeseries.to_state() == slowdown_run.timeseries.to_state()
        assert np.array_equal(
            again.result.latencies_s, slowdown_run.result.latencies_s
        )

    def test_injects_one_slowdown_window(self, slowdown_run):
        windows = slowdown_run.fault_windows()
        assert len(windows) == 1
        start, end, kind = windows[0]
        assert kind == "t4.slowdown"
        assert 0.0 <= start < end <= slowdown_run.horizon_s

    def test_fault_activity_confined_to_fault_windows(self, slowdown_run):
        summary = slowdown_run.timeseries.summary()
        fault_indices = _fault_window_indices(slowdown_run)
        active = {
            i for i in summary.window_indices() if summary.fault_activity(i)
        }
        assert active
        assert active <= fault_indices

    def test_p99_excursion_coincides_with_fault_window(self, slowdown_run):
        """The acceptance pin: the tail excursion lands in (or within
        one settling window of) the injected throttle window, and is
        flagged fault-correlated."""
        summary = slowdown_run.timeseries.summary()
        alerts = detect_tail_excursions(summary)
        assert alerts, "5x throttle must produce a p99 excursion"
        fault_indices = _fault_window_indices(slowdown_run)
        slack = {i + d for i in fault_indices for d in (-1, 0, 1)}
        for a in alerts:
            assert a.fault_correlated
            assert set(range(a.start_window, a.end_window + 1)) <= slack

    def test_burn_rate_alert_coincides_with_fault_window(self, slowdown_run):
        """The acceptance pin, burn-rate half: a tight p99 rule starts
        burning inside the fault window."""
        alerts = evaluate_burn_rates(
            slowdown_run.timeseries, _tight_rules()
        )
        fast = [a for a in alerts if a.kind == "fast_burn"]
        assert fast
        fault_indices = _fault_window_indices(slowdown_run)
        for a in fast:
            assert a.fault_correlated
            assert a.start_window in fault_indices
            assert a.severity == "fail"

    def test_saturation_shift_is_fault_correlated(self, slowdown_run):
        summary = slowdown_run.timeseries.summary()
        saturating = [
            a for a in detect_regime_shifts(summary)
            if "-> saturated" in a.detail
        ]
        assert saturating
        assert all(a.fault_correlated for a in saturating)

    def test_health_timeline_stays_on_known_states(self, slowdown_run):
        summary = slowdown_run.timeseries.summary()
        seen = set()
        for track in summary.track_names("state"):
            for i in summary.window_indices():
                seen |= set(summary.states(track, i))
        assert seen <= {"healthy", "degraded", "crashed", "breaker_open"}
        assert "healthy" in seen


class TestBitIdentical:
    """Time-series collection must be observational only."""

    @pytest.fixture(scope="class")
    def stm(self):
        from repro.monitor.scenario import service_model_for
        from repro.models import build_model

        return service_model_for(build_model("rm1"), "t4", 64)

    def test_query_scheduler_unchanged_by_timeseries(self, stm):
        from repro.runtime import BatchingPolicy, QueryScheduler

        def run(ts):
            sched = QueryScheduler(
                stm, BatchingPolicy(max_batch=64), seed=7, timeseries=ts
            )
            return sched.run(2000.0, num_queries=400)

        plain = run(None)
        observed = run(TimeSeries(window_s=0.01))
        assert np.array_equal(plain.latencies_s, observed.latencies_s)
        assert np.array_equal(plain.batch_sizes, observed.batch_sizes)

    def test_resilient_scheduler_unchanged_by_timeseries(self, stm):
        from repro.resilience import (
            FaultPlan,
            Replica,
            ResiliencePolicy,
            ResilientScheduler,
            RetryPolicy,
        )
        from repro.runtime import BatchingPolicy

        def run(ts, plan):
            sched = ResilientScheduler(
                [Replica("t4", stm)], BatchingPolicy(max_batch=64),
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(deadline_s=0.05, max_retries=1)
                ),
                fault_plan=plan, seed=7, timeseries=ts,
            )
            return sched.run(2000.0, num_queries=400)

        # Fault-off: the pinned acceptance guarantee.
        plain = run(None, None)
        observed = run(TimeSeries(window_s=0.01), None)
        assert np.array_equal(plain.latencies_s, observed.latencies_s)
        assert plain.completed == observed.completed

        # Fault-on: collection is read-only there too.
        plan = FaultPlan.synthesize(
            7, ["t4"], 0.2, slowdown_windows=1, slowdown_multiplier=4.0
        )
        faulted = run(None, plan)
        faulted_obs = run(TimeSeries(window_s=0.01), plan)
        assert np.array_equal(faulted.latencies_s, faulted_obs.latencies_s)
        assert faulted.fault_counts == faulted_obs.fault_counts


class TestReplicaTraceLanes:
    """Hedged/retried attempts get their own stable pid/tid tracks."""

    @pytest.fixture(scope="class")
    def traced(self):
        with telemetry.capture() as (tracer, registry):
            ms = run_monitored_scenario(
                "rm1", "t4", "slowdown", queries=QUERIES, seed=SEED,
                fallback="broadwell", scenario_overrides=OVERRIDES,
            )
        return ms, tracer.sorted_spans()

    def test_replicas_get_distinct_stable_pids(self, traced):
        ms, spans = traced
        assert ms.result.hedges > 0, "fallback run must hedge"
        by_category = {}
        for s in spans:
            by_category.setdefault(s.category, set()).add((s.pid, s.tid))
        serve = by_category["resilience.server"]
        assert serve == {(REPLICA_PID_BASE, REPLICA_LANE_SERVE)}
        # Hedge attempts land on the fallback replica's own process,
        # in the hedge lane — not interleaved with primary serving.
        hedge = by_category["resilience.hedge"]
        assert hedge == {(REPLICA_PID_BASE + 1, REPLICA_LANE_HEDGE)}
        fault = by_category["resilience.fault"]
        assert fault == {(REPLICA_PID_BASE, REPLICA_LANE_FAULT)}

    def test_document_names_replica_processes_and_lanes(self, traced):
        _, spans = traced
        doc = chrome_trace_document(spans, process_name="test")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"] for e in meta
            if e["name"] == "process_name"
        }
        assert process_names.get(REPLICA_PID_BASE) == "replica: t4"
        assert process_names.get(REPLICA_PID_BASE + 1) == "replica: broadwell"
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"] for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names[(REPLICA_PID_BASE, REPLICA_LANE_SERVE)] == "serve"
        assert thread_names[(REPLICA_PID_BASE + 1, REPLICA_LANE_HEDGE)] == "hedges"
        assert thread_names[(REPLICA_PID_BASE, REPLICA_LANE_FAULT)] == "faults"


class TestMonitorCli:
    def _rules_file(self, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text(
            "[[rule]]\n"
            'name = "p99-tight"\n'
            'metric = "p99_latency_s"\n'
            "max = 0.003\n"
            "budget = 0.01\n"
            'severity = "fail"\n',
            encoding="utf-8",
        )
        return str(rules)

    def test_monitor_golden_run(self, capsys, tmp_path):
        """The CI smoke invocation: timeline, burn alerts, record,
        dashboard, and the fault-correlation gate, in one pass."""
        ledger = tmp_path / "ledger"
        dash = tmp_path / "dash.html"
        code = main([
            "monitor", "--model", "rm1", "--platform", "t4",
            "--scenario", "slowdown", "--queries", str(QUERIES),
            "--seed", str(SEED), "--slowdown-multiplier", "5.0",
            "--rules", self._rules_file(tmp_path),
            "--record-dir", str(ledger), "--report", str(dash),
            "--expect-fault-alert",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "monitor: rm1/t4, scenario 'slowdown'" in out
        assert "fault-correlated" in out
        assert "fast_burn" in out and "tail_excursion" in out
        assert "injected fault windows:" in out and "t4.slowdown" in out
        html = dash.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html
        # The record carries the compact time-series section.
        from repro.ledger import load_records

        records = load_records(ledger)
        assert len(records) == 1 and records[0].has_timeseries()
        assert records[0].kind == "monitor"
        summary = records[0].timeseries_summary()
        assert summary.window_indices()

        # Golden second half: `repro report` re-renders the persisted
        # record, re-detecting the fault-correlated excursion from the
        # compact summary alone.
        assert main(["report", str(ledger)]) == 0
        md = capsys.readouterr().out
        assert md.startswith("# monitor:")
        assert "tail_excursion" in md and "[fault-correlated]" in md
        assert "| w | t (s) |" in md

    def test_monitor_json_and_expectation_failure(self, capsys, tmp_path):
        # A fault-free scenario cannot raise a fault-correlated alert:
        # --expect-fault-alert must fail, and the JSON document must
        # carry no fault activity at all.
        code = main([
            "monitor", "--model", "rm1", "--platform", "t4",
            "--scenario", "drops", "--queries", "400",
            "--seed", str(SEED), "--format", "json",
            "--expect-fault-alert",
        ])
        out = capsys.readouterr().out
        doc = json.loads(out)
        has_fault_alert = any(
            a["fault_correlated"] for a in doc["alerts"]
        )
        assert code == (0 if has_fault_alert else 1)
        assert doc["windows"], "JSON document must carry the timeline"
        assert doc["meta"]["scenario"] == "drops"

    def test_report_rejects_record_without_timeseries(self, tmp_path, capsys):
        from repro.ledger import RunLedger, record_run

        ledger = RunLedger(tmp_path / "plain")
        ledger.append(record_run("ncf", "broadwell", batch_size=16, queries=0))
        with pytest.raises(SystemExit, match="no record"):
            main(["report", str(tmp_path / "plain")])

    def test_report_html_output(self, tmp_path, capsys):
        from repro.ledger import RunLedger, fingerprint_for, record_schedule

        ms = run_monitored_scenario(
            "rm1", "t4", "slowdown", queries=400, seed=SEED,
        )
        record = record_schedule(
            ms.result, fingerprint_for("rm1", "t4", 64, SEED), max_batch=64,
            kind="monitor", timeseries=ms.timeseries,
        )
        RunLedger(tmp_path / "runs").append(record)
        out_path = tmp_path / "dash.html"
        assert main([
            "report", str(tmp_path / "runs"), "-o", str(out_path),
        ]) == 0
        assert "dashboard:" in capsys.readouterr().out
        html = out_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Windowed timeline" in html

    def test_report_html_output_shard_scenario(self, tmp_path, capsys):
        # The replica golden above only covers replica fault plans;
        # shard scenarios record shard-server fault activity tracks
        # (shard.<name>.*) and must render through the same HTML path.
        from repro.ledger import RunLedger, fingerprint_for, record_schedule

        ms = run_monitored_scenario(
            "rm2", "broadwell", "shard_slowdown", queries=400, seed=SEED,
        )
        assert ms.fault_windows(), "shard scenario must inject faults"
        assert all(
            kind.startswith("shard") for _, _, kind in ms.fault_windows()
        )
        record = record_schedule(
            ms.result, fingerprint_for("rm2", "broadwell", 64, SEED),
            max_batch=64, kind="monitor", timeseries=ms.timeseries,
        )
        RunLedger(tmp_path / "runs").append(record)
        out_path = tmp_path / "shard-dash.html"
        assert main([
            "report", str(tmp_path / "runs"), "-o", str(out_path),
        ]) == 0
        assert "dashboard:" in capsys.readouterr().out
        html = out_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Windowed timeline" in html and "<svg" in html
        # The fault-activity and shard-health tracks survive the
        # compact round-trip (the former drives the reconstructed
        # fault windows, the latter the health column).
        summary = record.timeseries_summary()
        assert "faults.window_active_s" in summary.fault_tracks()
        assert any(
            t.startswith("shard.") for t in summary.track_names()
        ), f"expected a shard state track, got {summary.track_names()}"
