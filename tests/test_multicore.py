"""Tests for the multi-core scaling extension."""

import pytest

from repro.hw import BROADWELL
from repro.models import build_model
from repro.uarch import MulticoreModel


@pytest.fixture(scope="module")
def mc():
    return MulticoreModel(BROADWELL)


class TestMulticoreScaling:
    def test_throughput_increases_with_cores(self, mc):
        graph = build_model("rm3").build_graph(64)
        points = mc.scaling_curve(graph, [1, 4, 16])
        throughputs = [p.throughput for p in points]
        assert throughputs == sorted(throughputs)

    def test_efficiency_starts_at_one(self, mc):
        graph = build_model("ncf").build_graph(64)
        points = mc.scaling_curve(graph, [1, 8])
        assert points[0].efficiency == pytest.approx(1.0)
        assert 0 < points[1].efficiency <= 1.0 + 1e-9

    def test_embedding_model_scales_worse_than_fc_model(self, mc):
        """RM2's DRAM demand saturates the socket before RM3's does —
        the motivation the paper cites for near-memory processing."""
        rm2 = mc.scaling_curve(build_model("rm2").build_graph(256), [1, 16])
        rm3 = mc.scaling_curve(build_model("rm3").build_graph(256), [1, 16])
        assert rm2[-1].efficiency < rm3[-1].efficiency

    def test_rm2_saturates_bandwidth_at_full_socket(self, mc):
        points = mc.scaling_curve(build_model("rm2").build_graph(1024), [1, 16])
        assert points[-1].bandwidth_saturated
        assert not points[0].bandwidth_saturated

    def test_invalid_core_count_rejected(self, mc):
        graph = build_model("ncf").build_graph(16)
        with pytest.raises(ValueError):
            mc.scaling_curve(graph, [0])
        with pytest.raises(ValueError):
            mc.scaling_curve(graph, [64])
