"""Tests for the near-memory-processing what-if model."""

import pytest

from repro.hw import BROADWELL
from repro.models import build_model
from repro.uarch import NmpConfig, NmpSystem


@pytest.fixture(scope="module")
def nmp():
    return NmpSystem(BROADWELL)


class TestNmpConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NmpConfig(rank_parallelism=0)
        with pytest.raises(ValueError):
            NmpConfig(internal_bandwidth_factor=0.5)


class TestNmpSystem:
    def test_embedding_models_accelerate(self, nmp):
        for name in ("rm1", "rm2"):
            graph = build_model(name).build_graph(256)
            assert nmp.speedup(graph) > 1.2

    def test_fc_models_unaffected(self, nmp):
        """NMP only touches gather-and-pool; MLP models see ~nothing
        (the TensorDimm/Centaur observation)."""
        for name in ("rm3", "wnd", "mtwnd"):
            graph = build_model(name).build_graph(256)
            assert nmp.speedup(graph) == pytest.approx(1.0, abs=0.05)

    def test_congestion_clears(self, nmp):
        graph = build_model("rm2").build_graph(16)
        base = nmp.baseline.profile_graph(graph)
        accelerated = nmp.profile_graph(graph)
        base_cong = base.events.dram_congested_cycles / base.events.cycles
        nmp_cong = (
            accelerated.events.dram_congested_cycles / accelerated.events.cycles
        )
        assert nmp_cong < base_cong

    def test_more_ranks_more_speedup(self):
        graph = build_model("rm2").build_graph(256)
        weak = NmpSystem(BROADWELL, NmpConfig(rank_parallelism=1))
        strong = NmpSystem(BROADWELL, NmpConfig(rank_parallelism=16))
        assert strong.speedup(graph) > weak.speedup(graph)

    def test_single_lookup_tables_not_pooled(self, nmp):
        """One-hot lookups (WnD) have no pooling to offload."""
        graph = build_model("wnd").build_graph(64)
        base = nmp.baseline.profile_graph(graph).compute_seconds
        accel = nmp.profile_graph(graph).compute_seconds
        assert accel == pytest.approx(base, rel=0.02)

    def test_speedup_never_below_one(self, nmp):
        for name in ("ncf", "din", "dien"):
            graph = build_model(name).build_graph(64)
            assert nmp.speedup(graph) > 0.99
