"""Functional correctness of operator math against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TensorSpec
from repro.ops import (
    AUGRU,
    FC,
    GRU,
    Add,
    AttentionScores,
    BatchMatMul,
    Concat,
    DotInteraction,
    EmbeddingTable,
    Flatten,
    Gather,
    LocalActivationAttention,
    Mul,
    OpError,
    Relu,
    Reshape,
    Sigmoid,
    Slice,
    Softmax,
    SparseLengthsSum,
    Sum,
    Tanh,
)

RNG = np.random.default_rng(7)


def f32(*shape):
    return RNG.standard_normal(shape).astype(np.float32)


class TestFC:
    def test_matches_manual(self):
        op = FC(8, 3, "t")
        x = f32(5, 8)
        np.testing.assert_allclose(
            op.compute([x]), x @ op.weight.T + op.bias, rtol=1e-5
        )

    def test_custom_weights(self):
        w = np.eye(4, dtype=np.float32)
        op = FC(4, 4, weight=w, bias=np.zeros(4, dtype=np.float32))
        x = f32(2, 4)
        np.testing.assert_allclose(op.compute([x]), x, rtol=1e-6)

    def test_seed_key_determinism(self):
        assert np.array_equal(FC(8, 3, "k").weight, FC(8, 3, "k").weight)
        assert not np.array_equal(FC(8, 3, "k1").weight, FC(8, 3, "k2").weight)

    def test_shape_validation(self):
        with pytest.raises(OpError):
            FC(8, 3, "t").infer_shape([TensorSpec((5, 9))])

    def test_invalid_dims(self):
        with pytest.raises(OpError):
            FC(0, 3)


class TestEmbedding:
    def test_sls_sums_rows(self):
        table = EmbeddingTable(100, 4, "t")
        op = SparseLengthsSum(table)
        idx = np.array([[1, 2], [3, 3]], dtype=np.int64)
        expected = np.stack(
            [table.data[1] + table.data[2], table.data[3] * 2]
        )
        np.testing.assert_allclose(op.compute([idx]), expected, rtol=1e-6)

    def test_gather_keeps_rows(self):
        table = EmbeddingTable(100, 4, "t")
        op = Gather(table)
        idx = np.array([[5, 7, 5]], dtype=np.int64)
        out = op.compute([idx])
        assert out.shape == (1, 3, 4)
        np.testing.assert_array_equal(out[0, 0], out[0, 2])

    def test_out_of_range_index_rejected(self):
        table = EmbeddingTable(10, 4, "t")
        with pytest.raises(OpError):
            SparseLengthsSum(table).compute([np.array([[10]], dtype=np.int64)])

    def test_alloc_cap_wraps_indices(self):
        table = EmbeddingTable(1_000_000, 4, "t", alloc_rows_cap=128)
        assert table.alloc_rows == 128
        idx = np.array([[0, 128]], dtype=np.int64)  # same allocated row
        out = Gather(table).compute([idx])
        np.testing.assert_array_equal(out[0, 0], out[0, 1])

    def test_nominal_bytes_uses_nominal_rows(self):
        table = EmbeddingTable(1_000_000, 32, "t", alloc_rows_cap=128)
        assert table.nominal_bytes == 1_000_000 * 32 * 4

    def test_sls_rejects_float_indices(self):
        table = EmbeddingTable(10, 4, "t")
        with pytest.raises(OpError):
            SparseLengthsSum(table).infer_shape([TensorSpec((2, 2), "float32")])

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=20)
    def test_sls_equals_gather_plus_sum(self, batch, lookups):
        """Caffe2 SLS == TF ResourceGather + Sum (the Fig 7 identity)."""
        table = EmbeddingTable(64, 8, "prop")
        idx = np.random.default_rng(batch * 100 + lookups).integers(
            0, 64, size=(batch, lookups)
        )
        fused = SparseLengthsSum(table).compute([idx])
        unfused = Sum(axis=1).compute([Gather(table).compute([idx])])
        np.testing.assert_allclose(fused, unfused, rtol=1e-5)


class TestActivations:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(
            Relu().compute([x]), [[0.0, 0.0, 2.0]]
        )

    def test_sigmoid_range_and_symmetry(self):
        x = f32(10, 10) * 3  # moderate range: fp32 saturates past ~17
        y = Sigmoid().compute([x])
        assert np.all(y > 0) and np.all(y < 1)
        np.testing.assert_allclose(
            Sigmoid().compute([-x]), 1 - y, atol=1e-6
        )

    def test_sigmoid_extreme_values_stable(self):
        x = np.array([[-1000.0, 1000.0]], dtype=np.float32)
        y = Sigmoid().compute([x])
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [[0.0, 1.0]], atol=1e-12)

    def test_tanh(self):
        x = f32(3, 3)
        np.testing.assert_allclose(Tanh().compute([x]), np.tanh(x), rtol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        x = f32(4, 9) * 20
        y = Softmax().compute([x])
        np.testing.assert_allclose(y.sum(axis=-1), np.ones(4), rtol=1e-5)
        assert np.all(y >= 0)


class TestShaping:
    def test_concat_axis1(self):
        a, b = f32(2, 3), f32(2, 5)
        out = Concat(axis=1).compute([a, b])
        assert out.shape == (2, 8)
        np.testing.assert_array_equal(out[:, :3], a)

    def test_concat_negative_axis(self):
        spec = Concat(axis=-1).infer_shape([TensorSpec((2, 3)), TensorSpec((2, 4))])
        assert spec.shape == (2, 7)

    def test_concat_mismatch_rejected(self):
        with pytest.raises(OpError):
            Concat(axis=1).infer_shape([TensorSpec((2, 3)), TensorSpec((3, 3))])

    def test_flatten(self):
        out = Flatten().compute([f32(2, 3, 4)])
        assert out.shape == (2, 12)

    def test_reshape_with_minus_one(self):
        spec = Reshape((2, -1)).infer_shape([TensorSpec((4, 3))])
        assert spec.shape == (2, 6)

    def test_reshape_invalid(self):
        with pytest.raises(OpError):
            Reshape((5, 5)).infer_shape([TensorSpec((4, 3))])

    def test_slice(self):
        x = f32(4, 10)
        out = Slice(axis=1, start=2, stop=5).compute([x])
        np.testing.assert_array_equal(out, x[:, 2:5])


class TestElementwise:
    def test_sum_variadic(self):
        a, b, c = f32(3, 3), f32(3, 3), f32(3, 3)
        np.testing.assert_allclose(
            Sum().compute([a, b, c]), a + b + c, rtol=1e-5
        )

    def test_sum_axis_reduction(self):
        x = f32(2, 5, 3)
        np.testing.assert_allclose(
            Sum(axis=1).compute([x]), x.sum(axis=1), rtol=1e-5
        )

    def test_sum_axis_with_multiple_inputs_rejected(self):
        with pytest.raises(OpError):
            Sum(axis=1).infer_shape([TensorSpec((2, 3)), TensorSpec((2, 3))])

    def test_mul_and_add(self):
        a, b = f32(2, 4), f32(2, 4)
        np.testing.assert_allclose(Mul().compute([a, b]), a * b, rtol=1e-6)
        np.testing.assert_allclose(Add().compute([a, b]), a + b, rtol=1e-6)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10)
    def test_sum_linearity(self, k):
        """Sum of k copies == k * x (embedding-bag linearity)."""
        x = f32(2, 3)
        np.testing.assert_allclose(
            Sum().compute([x] * k), k * x, rtol=1e-4
        )


class TestMatmul:
    def test_batch_matmul(self):
        a, b = f32(3, 2, 4), f32(3, 4, 5)
        np.testing.assert_allclose(
            BatchMatMul().compute([a, b]), a @ b, rtol=1e-5
        )

    def test_attention_scores(self):
        seq, q = f32(2, 5, 8), f32(2, 8)
        expected = np.einsum("bth,bh->bt", seq, q)
        np.testing.assert_allclose(
            AttentionScores().compute([seq, q]), expected, rtol=1e-5
        )

    def test_dot_interaction_shape_and_values(self):
        feats = [f32(3, 4) for _ in range(5)]
        out = DotInteraction().compute(feats)
        assert out.shape == (3, 4 + 10)  # dense + C(5,2) pairs
        # First pair (features 0,1) should be their inner product.
        np.testing.assert_allclose(
            out[:, 4], np.sum(feats[0] * feats[1], axis=1), rtol=1e-5
        )
        # Dense passthrough.
        np.testing.assert_array_equal(out[:, :4], feats[0])


class TestRecurrent:
    def test_gru_shapes(self):
        gru_seq = GRU(8, 16, return_sequence=True, seed_key="t")
        gru_last = GRU(8, 16, return_sequence=False, seed_key="t")
        x = f32(4, 10, 8)
        assert gru_seq.compute([x]).shape == (4, 10, 16)
        assert gru_last.compute([x]).shape == (4, 16)

    def test_gru_last_equals_sequence_tail(self):
        x = f32(3, 7, 8)
        seq = GRU(8, 16, return_sequence=True, seed_key="same").compute([x])
        last = GRU(8, 16, return_sequence=False, seed_key="same").compute([x])
        np.testing.assert_allclose(seq[:, -1, :], last, rtol=1e-5)

    def test_gru_single_step_matches_equations(self):
        gru = GRU(4, 4, seed_key="eq")
        x = f32(2, 1, 4)
        cell = gru.cell
        gates_x = x[:, 0] @ cell.w_input.T + cell.bias
        gates_h = np.zeros((2, 12), dtype=np.float32)
        z = 1 / (1 + np.exp(-(gates_x[:, :4])))
        h_tilde = np.tanh(gates_x[:, 8:])
        expected = z * h_tilde  # h0 = 0
        np.testing.assert_allclose(gru.compute([x]), expected, rtol=1e-4)

    def test_gru_output_bounded(self):
        x = f32(2, 20, 8) * 100
        out = GRU(8, 8, seed_key="b").compute([x])
        assert np.all(np.abs(out) <= 1.0 + 1e-6)  # tanh-bounded state

    def test_augru_zero_scores_freeze_state(self):
        augru = AUGRU(8, 8, seed_key="z")
        seq = f32(2, 5, 8)
        scores = np.zeros((2, 5), dtype=np.float32)
        out = augru.compute([seq, scores])
        np.testing.assert_allclose(out, np.zeros((2, 8)), atol=1e-7)

    def test_augru_score_shape_validated(self):
        augru = AUGRU(8, 8, seed_key="v")
        with pytest.raises(OpError):
            augru.infer_shape([TensorSpec((2, 5, 8)), TensorSpec((2, 4))])


class TestAttention:
    def test_output_shape(self):
        att = LocalActivationAttention(8, 6, "t")
        behaviors, cand = f32(3, 10, 8), f32(3, 8)
        assert att.compute([behaviors, cand]).shape == (3, 8)

    def test_pooling_is_weighted_sum(self):
        """Output must live in the span of per-behavior weights."""
        att = LocalActivationAttention(4, 6, "w")
        behaviors = np.zeros((1, 3, 4), dtype=np.float32)
        behaviors[0, 1] = 1.0  # only one nonzero behavior
        cand = f32(1, 4)
        out = att.compute([behaviors, cand])
        # Output is scalar multiple of the single nonzero behavior row.
        ratio = out[0] / behaviors[0, 1]
        assert np.allclose(ratio, ratio[0], rtol=1e-4)

    def test_shape_validation(self):
        att = LocalActivationAttention(8)
        with pytest.raises(OpError):
            att.infer_shape([TensorSpec((3, 10, 7)), TensorSpec((3, 8))])
