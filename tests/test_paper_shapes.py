"""Integration tests pinning the paper's figure-level claims.

Each test asserts one qualitative result from the paper's evaluation
(who wins, by roughly what factor, where crossovers fall). These are
the reproduction's acceptance criteria: if a model change breaks one of
these, the corresponding figure no longer tells the paper's story.
"""

import pytest

from repro.core import SpeedupStudy, breakdown_for, collect_report
from repro.models import MODEL_ORDER, build_all_models, build_model
from repro.runtime import InferenceSession

FC_HEAVY = ["ncf", "rm3", "wnd", "mtwnd"]
EMBEDDING_HEAVY = ["rm1", "rm2"]


@pytest.fixture(scope="module")
def models():
    return build_all_models()


@pytest.fixture(scope="module")
def sweep(models):
    return SpeedupStudy(
        models=models, batch_sizes=[1, 16, 64, 256, 1024, 4096, 16384]
    ).run()


@pytest.fixture(scope="module")
def bdw_reports(models):
    return {n: collect_report(m, "broadwell", 16) for n, m in models.items()}


@pytest.fixture(scope="module")
def clx_reports(models):
    return {n: collect_report(m, "cascade_lake", 16) for n, m in models.items()}


class TestFig3Speedups:
    @pytest.mark.parametrize("name", FC_HEAVY)
    def test_fc_models_order_of_magnitude_on_gpu(self, sweep, name):
        assert sweep.speedup(name, "gtx1080ti", 16384) > 8.0
        assert sweep.speedup(name, "t4", 16384) > 8.0

    def test_speedup_capped_around_fifteen(self, sweep):
        """Abstract: 'up to 15x speedup'."""
        best = max(
            sweep.speedup(m, p, b)
            for m in sweep.model_names
            for p in sweep.platform_names
            for b in sweep.batch_sizes
        )
        assert 10.0 < best < 18.0

    @pytest.mark.parametrize("name", EMBEDDING_HEAVY)
    def test_embedding_models_gpu_speedup_below_four(self, sweep, name):
        for platform in ("gtx1080ti", "t4"):
            for batch in sweep.batch_sizes:
                assert sweep.speedup(name, platform, batch) < 4.0

    @pytest.mark.parametrize("name", EMBEDDING_HEAVY)
    def test_cascade_lake_beats_1080ti_at_small_batch(self, sweep, name):
        """'Cascade Lake consistently outperforms the 1080 Ti ... by at
        least 2x at small batch sizes' for RM1/RM2."""
        for batch in (1, 16):
            ratio = sweep.speedup(name, "cascade_lake", batch) / sweep.speedup(
                name, "gtx1080ti", batch
            )
            assert ratio > 1.9

    def test_din_broadwell_wins_at_small_batch(self, sweep):
        for batch in (1, 16, 64):
            assert sweep.speedup("din", "gtx1080ti", batch) < 1.0
            assert sweep.speedup("din", "t4", batch) < 1.0

    def test_din_gpu_saturates_below_five(self, sweep):
        for batch in sweep.batch_sizes:
            assert sweep.speedup("din", "gtx1080ti", batch) < 5.0

    def test_dien_reaches_about_seven_x(self, sweep):
        best = max(
            sweep.speedup("dien", p, b)
            for p in ("gtx1080ti", "t4")
            for b in sweep.batch_sizes
        )
        assert 5.0 < best < 9.0

    def test_cascade_lake_always_beats_broadwell(self, sweep):
        """Observation #3: CLX improves on BDW across ALL use cases."""
        for model in sweep.model_names:
            for batch in sweep.batch_sizes:
                assert sweep.speedup(model, "cascade_lake", batch) > 1.0

    @pytest.mark.parametrize("name", ["ncf", "rm3", "wnd", "mtwnd", "dien"])
    def test_t4_beats_1080ti_at_large_batch(self, sweep, name):
        """Observation #4: T4's SM count wins at batch > ~10^3."""
        assert sweep.speedup(name, "t4", 16384) > sweep.speedup(
            name, "gtx1080ti", 16384
        )

    def test_gpu_speedup_grows_with_batch_for_fc_models(self, sweep):
        for name in FC_HEAVY:
            series = [sweep.speedup(name, "gtx1080ti", b) for b in (16, 256, 16384)]
            assert series[0] < series[1] < series[2]


class TestFig4DataCommunication:
    def test_fraction_grows_with_batch_for_embedding_models(self, sweep):
        for name in EMBEDDING_HEAVY:
            small = sweep.data_comm_fraction(name, "gtx1080ti", 16)
            large = sweep.data_comm_fraction(name, "gtx1080ti", 16384)
            assert large > small

    def test_embedding_models_suffer_most(self, sweep):
        rm2 = sweep.data_comm_fraction("rm2", "gtx1080ti", 4096)
        rm3 = sweep.data_comm_fraction("rm3", "gtx1080ti", 4096)
        assert rm2 > 2 * rm3

    def test_fraction_substantial_at_large_batch(self, sweep):
        assert sweep.data_comm_fraction("rm2", "gtx1080ti", 16384) > 0.25


class TestFig5OptimalPlatform:
    def test_embedding_models_prefer_cpu_at_small_batch(self, sweep):
        cells = {
            (c.model, c.batch_size): c
            for c in SpeedupStudy.optimal_platform_grid(sweep)
        }
        for name in EMBEDDING_HEAVY + ["din"]:
            assert cells[(name, 16)].platform == "cascade_lake"

    def test_fc_models_prefer_gpu_at_large_batch(self, sweep):
        cells = {
            (c.model, c.batch_size): c
            for c in SpeedupStudy.optimal_platform_grid(sweep)
        }
        for name in FC_HEAVY:
            assert cells[(name, 16384)].platform in ("gtx1080ti", "t4")


class TestFig6OperatorBreakdowns:
    def test_fc_dominates_fc_models_on_cpu(self, sweep):
        for name in ("rm3", "wnd", "mtwnd"):
            breakdown = breakdown_for(sweep.profile(name, "broadwell", 1024))
            assert breakdown.dominant == "FC"

    def test_sls_dominates_embedding_models_on_cpu(self, sweep):
        for name in EMBEDDING_HEAVY:
            breakdown = breakdown_for(sweep.profile(name, "broadwell", 1024))
            assert breakdown.dominant == "SparseLengthsSum"

    def test_rm1_bottleneck_flips_fc_to_sls(self, models):
        """'on RM1, varying batch sizes from 4 to 64 will shift the
        dominant operator bottleneck from FC to SparseLengthsSum'."""
        session = InferenceSession(models["rm1"], "broadwell")
        small = breakdown_for(session.profile(4))
        large = breakdown_for(session.profile(64))
        assert small.share("FC") > small.share("SparseLengthsSum") * 0.8
        assert large.dominant == "SparseLengthsSum"

    def test_wnd_sls_heavy_at_small_batch_on_gpu(self, sweep):
        """'WnD, an FC-heavy model on CPUs, is dominated by the
        SparseLengthsSum operator at small batch sizes on GPUs.'"""
        gpu_small = breakdown_for(sweep.profile("wnd", "gtx1080ti", 16))
        cpu_small = breakdown_for(sweep.profile("wnd", "broadwell", 16))
        assert gpu_small.share("SparseLengthsSum") > cpu_small.share(
            "SparseLengthsSum"
        )
        assert gpu_small.dominant == "SparseLengthsSum"

    def test_din_concat_heavy_on_gpu(self, sweep):
        breakdown = breakdown_for(sweep.profile("din", "gtx1080ti", 1024))
        assert breakdown.share("Concat") > 0.3

    def test_dien_recurrent_dominated(self, sweep):
        breakdown = breakdown_for(sweep.profile("dien", "broadwell", 1024))
        assert breakdown.dominant == "RecurrentNetwork"


class TestFig8TopDown:
    def test_fc_models_retire_heavy_on_bdw(self, bdw_reports):
        for name in ("rm3", "wnd", "mtwnd"):
            td = bdw_reports[name].topdown
            assert td.retiring > 0.4
            assert td.retiring == max(td.level1.values())

    def test_embedding_models_not_retire_heavy_on_bdw(self, bdw_reports):
        for name in EMBEDDING_HEAVY:
            assert bdw_reports[name].topdown.retiring < 0.45
            assert bdw_reports[name].topdown.backend_bound > 0.3

    def test_embedding_models_most_bad_speculation(self, bdw_reports):
        rm_bs = min(bdw_reports[n].topdown.bad_speculation for n in EMBEDDING_HEAVY)
        other_bs = max(
            bdw_reports[n].topdown.bad_speculation
            for n in MODEL_ORDER
            if n not in EMBEDDING_HEAVY
        )
        assert rm_bs > other_bs

    def test_attention_models_frontend_heavy(self, bdw_reports):
        for name in ("din", "dien"):
            td = bdw_reports[name].topdown
            assert td.frontend_bound > 0.15
            assert td.frontend_latency > td.frontend_bandwidth

    def test_clx_reduces_bad_speculation(self, bdw_reports, clx_reports):
        for name in MODEL_ORDER:
            assert (
                clx_reports[name].topdown.bad_speculation
                <= bdw_reports[name].topdown.bad_speculation + 1e-9
            )

    def test_fc_models_retiring_slightly_decreases_on_clx(
        self, bdw_reports, clx_reports
    ):
        """'the fraction of cycles devoted to retiring did not increase
        between Broadwell and Cascade Lake for RM3, WnD, and MT-WnD'."""
        for name in ("rm3", "wnd", "mtwnd"):
            assert (
                clx_reports[name].topdown.retiring
                <= bdw_reports[name].topdown.retiring + 0.02
            )


class TestFig9Vectorization:
    def test_fc_models_over_60pct_avx_on_bdw(self, bdw_reports):
        for name in ("rm3", "wnd", "mtwnd"):
            assert bdw_reports[name].avx_fraction > 0.55

    def test_embedding_models_less_vectorized(self, bdw_reports):
        for name in EMBEDDING_HEAVY:
            assert bdw_reports[name].avx_fraction < 0.5

    def test_clx_lower_avx_share_but_faster(self, bdw_reports, clx_reports, models):
        for name in ("rm3", "wnd", "mtwnd"):
            assert (
                clx_reports[name].avx_fraction < bdw_reports[name].avx_fraction
            )
        # ... and still faster end-to-end (checked via sessions).
        for name in ("rm3", "wnd"):
            bdw_t = InferenceSession(models[name], "broadwell").profile(16)
            clx_t = InferenceSession(models[name], "cascade_lake").profile(16)
            assert clx_t.total_seconds < bdw_t.total_seconds


class TestFig10Backend:
    def test_fc_models_core_bound_on_bdw(self, bdw_reports):
        assert bdw_reports["rm3"].core_to_memory_ratio > 1.5
        assert bdw_reports["wnd"].core_to_memory_ratio > 1.5
        assert bdw_reports["mtwnd"].core_to_memory_ratio > 1.5

    def test_fc_models_memory_bound_on_clx(self, clx_reports):
        """'the backend bottleneck has shifted from core to memory'."""
        for name in ("rm3", "wnd"):
            assert clx_reports[name].core_to_memory_ratio < 1.5

    def test_clx_ratio_lower_than_bdw(self, bdw_reports, clx_reports):
        for name in ("rm3", "wnd", "mtwnd"):
            assert (
                clx_reports[name].core_to_memory_ratio
                < bdw_reports[name].core_to_memory_ratio
            )

    def test_embedding_models_memory_bound_everywhere(self, bdw_reports):
        for name in EMBEDDING_HEAVY:
            assert bdw_reports[name].core_to_memory_ratio < 1.0

    def test_fc_models_highest_fu_pressure(self, bdw_reports):
        fc_pressure = min(
            bdw_reports[n].fu_usage["3+"] for n in ("rm3", "wnd", "mtwnd")
        )
        emb_pressure = max(bdw_reports[n].fu_usage["3+"] for n in EMBEDDING_HEAVY)
        assert fc_pressure > emb_pressure

    def test_clx_reduces_fu_pressure_for_fc_models(self, bdw_reports, clx_reports):
        for name in ("rm3", "wnd"):
            assert (
                clx_reports[name].fu_usage["3+"]
                <= bdw_reports[name].fu_usage["3+"] + 0.02
            )


class TestFig11Instructions:
    def test_retired_instructions_drop_on_clx(self, bdw_reports, clx_reports):
        for name in MODEL_ORDER:
            assert (
                clx_reports[name].retired_instructions
                < bdw_reports[name].retired_instructions
            )


class TestFig12InstructionCache:
    def test_din_highest_impki(self, bdw_reports):
        din = bdw_reports["din"].i_mpki
        assert din == max(bdw_reports[n].i_mpki for n in MODEL_ORDER)
        assert 8.0 < din < 16.0  # paper: 12.4

    def test_dien_second_tier(self, bdw_reports):
        dien = bdw_reports["dien"].i_mpki
        assert 5.0 < dien < 11.0  # paper: 7.7
        assert dien < bdw_reports["din"].i_mpki

    def test_attention_models_far_above_all_others(self, bdw_reports):
        attention = min(bdw_reports[n].i_mpki for n in ("din", "dien"))
        rest = max(
            bdw_reports[n].i_mpki
            for n in MODEL_ORDER
            if n not in ("din", "dien")
        )
        assert attention > 3 * rest

    def test_ncf_elevated_versus_fc_heavy_models(self, bdw_reports):
        """NCF's small kernels thrash i-cache more than the big-GEMM
        models (paper groups NCF with DIN/DIEN as high-miss-rate).

        Known deviation: our RM1 shows i-MPKI comparable to NCF's (the
        paper's NCF sits clearly above the DLRM family); see
        EXPERIMENTS.md."""
        ncf = bdw_reports["ncf"].i_mpki
        assert ncf > 2 * bdw_reports["rm3"].i_mpki
        assert ncf > 2 * bdw_reports["wnd"].i_mpki


class TestFig13Decoders:
    def test_rm_models_dsb_limited_not_mite(self, bdw_reports):
        for name in EMBEDDING_HEAVY:
            r = bdw_reports[name]
            assert r.dsb_limited_fraction > 2 * r.mite_limited_fraction
            assert r.dsb_limited_fraction > 0.02

    def test_rm_models_most_decoder_limited(self, bdw_reports):
        rm_dsb = min(bdw_reports[n].dsb_limited_fraction for n in EMBEDDING_HEAVY)
        fc_dsb = max(bdw_reports[n].dsb_limited_fraction for n in ("rm3", "wnd"))
        assert rm_dsb > fc_dsb


class TestFig14DramCongestion:
    def test_rm2_far_above_others(self, bdw_reports):
        rm2 = bdw_reports["rm2"].dram_congested_fraction
        for other in ("rm1", "din", "dien"):
            assert rm2 > 3 * bdw_reports[other].dram_congested_fraction
        assert rm2 > 0.1

    def test_attention_models_not_congested(self, bdw_reports):
        assert bdw_reports["din"].dram_congested_fraction < 0.05
        assert bdw_reports["dien"].dram_congested_fraction < 0.05


class TestFig15Branches:
    def test_mispredicts_drop_bdw_to_clx(self, bdw_reports, clx_reports):
        for name in EMBEDDING_HEAVY:
            assert (
                clx_reports[name].branch_mpki < 0.7 * bdw_reports[name].branch_mpki
            )

    def test_embedding_models_most_mispredicts(self, bdw_reports):
        rm = min(bdw_reports[n].branch_mpki for n in EMBEDDING_HEAVY)
        rest = max(
            bdw_reports[n].branch_mpki
            for n in MODEL_ORDER
            if n not in EMBEDDING_HEAVY
        )
        assert rm > rest


class TestFig16Regression:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.core import run_fig16_study

        return run_fig16_study(batch_sizes=[1, 16, 256, 4096])

    def test_no_single_deciding_factor(self, study):
        """Paper conclusion: every bottleneck is multi-factor."""
        for result in study.values():
            assert result.weight_concentration() < 0.75

    def test_fc_ratio_reduces_bad_speculation(self, study):
        """'a high ratio of FC to embedding weights reduces bad
        speculation'."""
        weight = study["bad_speculation"].weights["fc_to_embedding_ratio"]
        assert weight < 0

    def test_fits_capture_signal(self, study):
        assert max(r.r_squared for r in study.values()) > 0.5
