"""Property-based tests over the performance models.

Hypothesis generates arbitrary (but physically sensible) workloads and
configurations; the models must respect basic physics: non-negativity,
monotonicity in work, conservation of accounting identities.
"""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.hw import BROADWELL, CASCADE_LAKE, GTX_1080_TI, T4
from repro.gpusim import KernelCostModel
from repro.ops.workload import MemoryStream, OpWorkload, RANDOM, SEQUENTIAL
from repro.uarch import CpuModel, DEFAULT_CONSTANTS, synthesize, topdown_from_events
from repro.uarch.backend import BackendModel
from repro.uarch.memory import MemoryModel


def workload_strategy():
    stream = st.builds(
        MemoryStream,
        footprint_bytes=st.integers(min_value=64, max_value=1 << 30),
        accesses=st.integers(min_value=1, max_value=1_000_000),
        granule_bytes=st.sampled_from([32, 64, 128, 256]),
        pattern=st.sampled_from([SEQUENTIAL, RANDOM]),
        locality=st.floats(min_value=0.0, max_value=1.0),
        is_write=st.booleans(),
        parallelism=st.integers(min_value=1, max_value=512),
    )
    return st.builds(
        OpWorkload,
        op_kind=st.sampled_from(["FC", "SparseLengthsSum", "Concat", "X"]),
        flops=st.integers(min_value=0, max_value=10**10),
        vector_fraction=st.floats(min_value=0.0, max_value=1.0),
        uses_fma=st.booleans(),
        scalar_ops=st.integers(min_value=0, max_value=10**7),
        streams=st.lists(stream, max_size=4).map(tuple),
        code_bytes=st.integers(min_value=128, max_value=512 * 1024),
        unique_code_blocks=st.integers(min_value=1, max_value=1000),
        branches=st.integers(min_value=0, max_value=10**7),
        branch_entropy=st.floats(min_value=0.0, max_value=1.0),
        kernel_launches=st.integers(min_value=1, max_value=4000),
        sequential_steps=st.integers(min_value=1, max_value=256),
    )


class TestCpuModelProperties:
    @given(workload_strategy())
    def test_cycles_finite_positive_and_accounted(self, workload):
        cpu = CpuModel(BROADWELL)
        profile = cpu.profile_workloads("g", ["n0"], [workload.op_kind], [workload])
        (op,) = profile.op_profiles
        assert math.isfinite(op.cycles)
        assert op.cycles > 0
        assert op.cycles == pytest.approx(
            op.execution_cycles
            + op.memory_stall_cycles
            + op.frontend_stall_cycles
            + op.bad_speculation_cycles
        )
        for value in (
            op.execution_cycles,
            op.memory_stall_cycles,
            op.frontend_stall_cycles,
            op.bad_speculation_cycles,
        ):
            assert value >= 0

    @given(workload_strategy())
    def test_topdown_always_valid(self, workload):
        cpu = CpuModel(CASCADE_LAKE)
        profile = cpu.profile_workloads("g", ["n0"], [workload.op_kind], [workload])
        td = topdown_from_events(profile.events)
        td.validate()

    @given(
        workload_strategy(),
        st.integers(min_value=2, max_value=16),
    )
    def test_more_flops_never_faster(self, workload, factor):
        assume(workload.flops > 1000)
        cpu = CpuModel(BROADWELL)
        bigger = OpWorkload(
            op_kind=workload.op_kind,
            flops=workload.flops * factor,
            vector_fraction=workload.vector_fraction,
            uses_fma=workload.uses_fma,
            scalar_ops=workload.scalar_ops,
            streams=workload.streams,
            code_bytes=workload.code_bytes,
            unique_code_blocks=workload.unique_code_blocks,
            branches=workload.branches,
            branch_entropy=workload.branch_entropy,
            kernel_launches=workload.kernel_launches,
            sequential_steps=workload.sequential_steps,
        )
        base = cpu.profile_workloads("g", ["n"], [workload.op_kind], [workload])
        more = cpu.profile_workloads("g", ["n"], [workload.op_kind], [bigger])
        assert more.op_profiles[0].cycles >= base.op_profiles[0].cycles

    @given(workload_strategy())
    def test_events_nonnegative(self, workload):
        cpu = CpuModel(BROADWELL)
        profile = cpu.profile_workloads("g", ["n"], [workload.op_kind], [workload])
        for name, value in profile.events.as_dict().items():
            assert value >= 0, name


class TestComponentProperties:
    @given(workload_strategy())
    def test_instruction_mix_nonnegative(self, workload):
        for spec in (BROADWELL, CASCADE_LAKE):
            mix = synthesize(workload, spec, DEFAULT_CONSTANTS)
            assert mix.total >= 0
            assert mix.avx_instructions <= mix.total + 1e-6

    @given(workload_strategy())
    def test_memory_profile_conserves_accesses(self, workload):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        profile = mm.profile(workload)
        total_levels = (
            profile.l1_accesses
            + profile.l2_accesses
            + profile.l3_accesses
            + profile.dram_accesses
        )
        total_streams = sum(s.accesses for s in workload.streams)
        assert total_levels == pytest.approx(total_streams, rel=1e-6, abs=1e-6)
        assert 0.0 <= profile.dram_occupancy <= 1.0

    @given(workload_strategy())
    def test_backend_histogram_simplex(self, workload):
        bm = BackendModel(BROADWELL, DEFAULT_CONSTANTS)
        mix = synthesize(workload, BROADWELL, DEFAULT_CONSTANTS)
        profile = bm.profile(mix)
        bm.port_histogram(profile, max(profile.execution_cycles, 1.0))
        total = (
            profile.ports_0_fraction
            + profile.ports_1_2_fraction
            + profile.ports_3_plus_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestGpuModelProperties:
    @given(workload_strategy())
    def test_kernel_time_at_least_launch_floor(self, workload):
        for spec in (GTX_1080_TI, T4):
            km = KernelCostModel(spec)
            profile = km.profile(workload)
            assert profile.seconds >= profile.launch_seconds
            assert profile.launch_seconds == pytest.approx(
                workload.kernel_launches * spec.kernel_launch_us * 1e-6
            )

    @given(workload_strategy(), st.integers(min_value=2, max_value=8))
    def test_gpu_compute_monotonic_in_flops(self, workload, factor):
        assume(workload.flops > 1000)
        km = KernelCostModel(T4)
        bigger = OpWorkload(
            op_kind=workload.op_kind,
            flops=workload.flops * factor,
            vector_fraction=workload.vector_fraction,
            uses_fma=workload.uses_fma,
            scalar_ops=workload.scalar_ops,
            streams=workload.streams,
            code_bytes=workload.code_bytes,
            unique_code_blocks=workload.unique_code_blocks,
            branches=workload.branches,
            branch_entropy=workload.branch_entropy,
            kernel_launches=workload.kernel_launches,
            sequential_steps=workload.sequential_steps,
        )
        assert km.profile(bigger).compute_seconds >= km.profile(workload).compute_seconds
