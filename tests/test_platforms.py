"""Tests for hardware platform specs (Table II fidelity)."""

import pytest

from repro.hw import (
    BROADWELL,
    CASCADE_LAKE,
    GTX_1080_TI,
    PLATFORM_ORDER,
    PLATFORMS,
    T4,
    cpu_platforms,
    gpu_platforms,
    platform_by_name,
)


class TestTableII:
    """Pin every value the paper's Table II publishes."""

    def test_broadwell(self):
        s = BROADWELL
        assert s.name == "Xeon E5-2697A"
        assert s.frequency_ghz == 2.6
        assert s.cores == 16
        assert s.simd_width_bits == 256  # AVX-2
        assert (s.l1d_kb, s.l2_kb, s.l3_mb) == (32, 256, 40.0)
        assert s.cache_inclusive
        assert s.dram_capacity_gb == 256
        assert (s.ddr_type, s.ddr_frequency_mhz) == ("DDR4", 2400)
        assert s.dram_bandwidth_gbps == 77.0
        assert s.tdp_w == 145

    def test_cascade_lake(self):
        s = CASCADE_LAKE
        assert s.name == "Xeon Gold 6242"
        assert s.frequency_ghz == 2.8
        assert s.simd_width_bits == 512  # AVX-512
        assert s.has_vnni
        assert (s.l1d_kb, s.l2_kb, s.l3_mb) == (32, 1024, 22.0)
        assert not s.cache_inclusive  # exclusive
        assert s.dram_capacity_gb == 384
        assert s.ddr_frequency_mhz == 2933
        assert s.dram_bandwidth_gbps == 131.0
        assert s.tdp_w == 150

    def test_gtx_1080_ti(self):
        s = GTX_1080_TI
        assert s.microarchitecture == "Pascal"
        assert s.frequency_ghz == 1.48
        assert s.sm_count == 28
        assert s.cuda_capability == "6.1"
        assert s.l2_mb == 2.75
        assert s.dram_capacity_gb == 11
        assert (s.ddr_type, s.dram_bandwidth_gbps) == ("GDDR5X", 484.4)
        assert s.tdp_w == 250

    def test_t4(self):
        s = T4
        assert s.microarchitecture == "Turing"
        assert s.frequency_ghz == 0.58
        assert s.sm_count == 40
        assert s.cuda_capability == "7.5"
        assert (s.ddr_type, s.dram_bandwidth_gbps) == ("GDDR6", 320.0)
        assert s.tdp_w == 70


class TestSpecDerived:
    def test_simd_lanes(self):
        assert BROADWELL.simd_fp32_lanes == 8
        assert CASCADE_LAKE.simd_fp32_lanes == 16

    def test_gpu_peak_flops(self):
        # 2 * SM * cores/SM * GHz.
        assert GTX_1080_TI.peak_fp32_tflops == pytest.approx(
            2 * 28 * 128 * 1.48 / 1000
        )
        assert T4.peak_fp32_tflops == pytest.approx(2 * 40 * 128 * 0.58 / 1000)

    def test_clx_predicts_better_than_bdw(self):
        assert CASCADE_LAKE.predictor_quality > BROADWELL.predictor_quality
        assert CASCADE_LAKE.branch_penalty <= BROADWELL.branch_penalty

    def test_with_overrides(self):
        wide = BROADWELL.with_overrides(simd_width_bits=512)
        assert wide.simd_fp32_lanes == 16
        assert BROADWELL.simd_width_bits == 256  # original untouched


class TestRegistry:
    def test_platform_order(self):
        assert PLATFORM_ORDER == ["broadwell", "cascade_lake", "gtx1080ti", "t4"]
        assert set(PLATFORM_ORDER) == set(PLATFORMS)

    def test_aliases(self):
        assert platform_by_name("BDW") is BROADWELL
        assert platform_by_name("clx") is CASCADE_LAKE
        assert platform_by_name("1080Ti") is GTX_1080_TI
        assert platform_by_name("Cascade Lake") is CASCADE_LAKE
        assert platform_by_name("turing") is T4

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            platform_by_name("a100")

    def test_kind_partition(self):
        assert set(cpu_platforms()) == {"broadwell", "cascade_lake"}
        assert set(gpu_platforms()) == {"gtx1080ti", "t4"}
        assert all(s.kind == "cpu" for s in cpu_platforms().values())
        assert all(s.kind == "gpu" for s in gpu_platforms().values())
