"""Tests for synthetic workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import build_model
from repro.workloads import (
    QueryGenerator,
    UniformIndices,
    ZipfIndices,
    hot_keys,
    hot_mass,
    operator_breakdown_batch_sizes,
    paper_batch_sizes,
)


class TestBatchGrids:
    def test_paper_batch_sizes(self):
        sizes = paper_batch_sizes()
        assert sizes[0] == 1
        assert sizes[-1] == 16384
        assert all(b == 4**i for i, b in enumerate(sizes))

    def test_operator_breakdown_sizes(self):
        assert operator_breakdown_batch_sizes() == [4, 64, 1024, 16384]


class TestDistributions:
    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        samples = UniformIndices().sample(rng, 1000, (500,))
        assert samples.min() >= 0
        assert samples.max() < 1000

    def test_zipf_bounds(self):
        rng = np.random.default_rng(0)
        samples = ZipfIndices(alpha=0.8).sample(rng, 1000, (2000,))
        assert samples.min() >= 0
        assert samples.max() < 1000

    def test_zipf_skew(self):
        """Zipf concentrates mass on low ranks; uniform does not."""
        rng = np.random.default_rng(1)
        zipf = ZipfIndices(alpha=1.2).sample(rng, 10_000, (20_000,))
        uniform = UniformIndices().sample(rng, 10_000, (20_000,))
        assert (zipf < 100).mean() > 5 * (uniform < 100).mean()

    def test_zipf_alpha_increases_skew(self):
        rng = np.random.default_rng(2)
        mild = ZipfIndices(alpha=0.5).sample(rng, 10_000, (20_000,))
        heavy = ZipfIndices(alpha=1.5).sample(rng, 10_000, (20_000,))
        assert (heavy < 10).mean() > (mild < 10).mean()

    def test_zipf_huge_table_covers_row_space(self):
        rng = np.random.default_rng(3)
        samples = ZipfIndices(alpha=0.8).sample(rng, 10 * (1 << 20), (5000,))
        assert samples.max() >= 1 << 20  # beyond the truncated support

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZipfIndices(alpha=0.0)

    def test_expected_locality_ordering(self):
        assert UniformIndices().expected_locality(10**6) == 0.0
        z = ZipfIndices(alpha=0.8)
        assert 0 < z.expected_locality(10**6) <= 0.6
        assert ZipfIndices(alpha=1.6).expected_locality(10**6) > z.expected_locality(
            10**6
        )


class TestQueryGenerator:
    @pytest.mark.parametrize("name", ["ncf", "rm2", "din", "dien"])
    def test_feeds_match_model_inputs(self, name):
        model = build_model(name)
        gen = QueryGenerator(model)
        feeds = gen.generate(8)
        for desc in model.input_descriptions(8):
            assert desc.name in feeds
            assert feeds[desc.name].shape == desc.spec.shape

    def test_index_feeds_in_range(self):
        model = build_model("rm1")
        feeds = QueryGenerator(model).generate(16)
        for desc in model.input_descriptions(16):
            if desc.kind == desc.INDICES:
                assert feeds[desc.name].min() >= 0
                assert feeds[desc.name].max() < desc.rows

    def test_seed_reproducibility(self):
        model = build_model("ncf")
        f1 = QueryGenerator(model, seed=9).generate(4)
        f2 = QueryGenerator(model, seed=9).generate(4)
        for k in f1:
            np.testing.assert_array_equal(f1[k], f2[k])

    def test_different_seeds_differ(self):
        model = build_model("ncf")
        f1 = QueryGenerator(model, seed=1).generate(64)
        f2 = QueryGenerator(model, seed=2).generate(64)
        assert any(not np.array_equal(f1[k], f2[k]) for k in f1)

    def test_stream_yields_distinct_batches(self):
        model = build_model("ncf")
        gen = QueryGenerator(model)
        batches = list(gen.stream(4, 3))
        assert len(batches) == 3
        assert not np.array_equal(
            batches[0]["user_ids"], batches[1]["user_ids"]
        )

    def test_input_bytes(self):
        model = build_model("rm1")
        gen = QueryGenerator(model)
        expected = 16 * 13 * 4 + 8 * 16 * 80 * 8  # dense + 8 index tensors
        assert gen.input_bytes(16) == expected

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            QueryGenerator(build_model("ncf")).generate(0)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=10)
    def test_any_batch_size_executes(self, batch):
        from repro.graph import execute

        model = build_model("ncf")
        feeds = QueryGenerator(model).generate(batch)
        (out,) = execute(model.build_graph(batch), feeds).values()
        assert out.shape[0] == batch


class TestHotKeys:
    """Satellite: the deterministic hot set matches sampled traces."""

    def test_zipf_hot_keys_match_empirical_frequencies(self):
        rows, k, n = 10_000, 8, 200_000
        dist = ZipfIndices(alpha=1.1)
        rng = np.random.default_rng(2020)
        trace = dist.sample(rng, rows, (n,))
        counts = np.bincount(trace, minlength=rows)
        empirical_order = np.argsort(-counts, kind="stable")
        hot = hot_keys(dist, rows, k)
        # the single hottest row is exact, and the whole predicted hot
        # set sits inside the empirical top set (ordering at the tail
        # of the hot set can wiggle with sampling noise)
        assert hot[0] == empirical_order[0]
        assert set(hot.tolist()) <= set(empirical_order[: 2 * k].tolist())
        # predicted hot mass matches the trace's observed mass
        observed = counts[hot].sum() / n
        assert hot_mass(dist, rows, k) == pytest.approx(observed, abs=0.02)

    def test_zipf_hot_keys_are_rank_prefix(self):
        dist = ZipfIndices(alpha=0.8)
        assert np.array_equal(hot_keys(dist, 1000, 4), np.arange(4))
        # k is clamped to the row count
        assert len(hot_keys(dist, 3, 10)) == 3

    def test_zipf_hot_keys_huge_table_stride_mapping(self):
        rows = 4 * (1 << 20)  # beyond the sampling support cap
        dist = ZipfIndices(alpha=1.1)
        hot = hot_keys(dist, rows, 16)
        stride = rows // (1 << 20)
        assert np.all(hot % stride == 0)
        # empirical check: the hottest sampled row lands in the first
        # rank group, whose representative is hot[0] == 0
        rng = np.random.default_rng(7)
        trace = dist.sample(rng, rows, (100_000,))
        values, counts = np.unique(trace, return_counts=True)
        assert values[np.argmax(counts)] // stride == hot[0] // stride

    def test_hot_mass_monotone_in_k_and_alpha(self):
        dist = ZipfIndices(alpha=1.1)
        masses = [hot_mass(dist, 1 << 20, k) for k in (16, 256, 4096)]
        assert masses == sorted(masses)
        assert hot_mass(ZipfIndices(alpha=1.4), 1 << 20, 1024) > \
            hot_mass(ZipfIndices(alpha=0.8), 1 << 20, 1024)

    def test_uniform_hot_set_is_flat(self):
        dist = UniformIndices()
        assert np.array_equal(hot_keys(dist, 100, 5), np.arange(5))
        assert hot_mass(dist, 100, 5) == pytest.approx(0.05)
        assert hot_mass(dist, 100, 200) == 1.0
