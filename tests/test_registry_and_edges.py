"""Registry coverage and edge-case behaviour across small modules."""

import numpy as np
import pytest

from repro.core import render_table, to_csv
from repro.graph import Graph, GraphError, TensorSpec
from repro.ops import (
    OPERATOR_KINDS,
    FC,
    OpError,
    Operator,
    Slice,
    Sum,
    all_kinds,
    merge_workloads,
    operator_class,
)
from repro.ops.workload import OpWorkload
from repro.runtime import InferenceProfile


class TestRegistry:
    def test_all_kinds_sorted_and_complete(self):
        kinds = all_kinds()
        assert kinds == sorted(kinds)
        for expected in (
            "FC",
            "SparseLengthsSum",
            "Gather",
            "Concat",
            "RecurrentNetwork",
            "AUGRU",
            "LocalActivation",
            "DotInteraction",
        ):
            assert expected in kinds

    def test_operator_class_roundtrip(self):
        assert operator_class("FC") is FC

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            operator_class("Conv2D")

    def test_registry_kinds_match_classes(self):
        for kind, cls in OPERATOR_KINDS.items():
            assert cls.kind == kind
            assert issubclass(cls, Operator)


class TestGraphEdges:
    def test_input_can_be_output(self):
        g = Graph("idg")
        g.add_input("x", TensorSpec((2, 2)))
        g.mark_output("x")
        # Needs at least the output defined; no nodes is fine.
        g.validate()

    def test_mark_output_idempotent(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 2)))
        g.mark_output("x")
        g.mark_output("x")
        assert g.output_names == ["x"]

    def test_spec_of_unknown(self):
        with pytest.raises(GraphError):
            Graph().spec_of("ghost")

    def test_contains_and_len(self):
        g = Graph()
        g.add_input("x", TensorSpec((2, 8)))
        name = g.add_node("n", FC(8, 4, "e"), ["x"])
        assert name in g
        assert "x" not in g  # inputs are not nodes
        assert len(g) == 1


class TestOperatorEdges:
    def test_slice_invalid_bounds(self):
        with pytest.raises(OpError):
            Slice(axis=0, start=3, stop=3)

    def test_slice_axis_out_of_range(self):
        with pytest.raises(OpError):
            Slice(axis=5, start=0, stop=1).infer_shape([TensorSpec((2, 2))])

    def test_slice_exceeds_extent(self):
        with pytest.raises(OpError):
            Slice(axis=1, start=0, stop=9).infer_shape([TensorSpec((2, 2))])

    def test_sum_axis_out_of_range(self):
        with pytest.raises(OpError):
            Sum(axis=4).infer_shape([TensorSpec((2, 2))])

    def test_sum_no_inputs(self):
        with pytest.raises(OpError):
            Sum().infer_shape([])

    def test_merge_single_part_is_identityish(self):
        w = OpWorkload(op_kind="X", flops=100, vector_fraction=0.5, branches=7)
        merged = merge_workloads("Y", [w])
        assert merged.flops == w.flops
        assert merged.vector_fraction == pytest.approx(w.vector_fraction)
        assert merged.branches == w.branches
        assert merged.op_kind == "Y"

    def test_fc_check_arity(self):
        with pytest.raises(OpError):
            FC(4, 4, "a").infer_shape([TensorSpec((2, 4)), TensorSpec((2, 4))])


class TestReportEdges:
    def test_render_table_no_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_to_csv_empty(self):
        assert to_csv(["x"], []) == "x\n"

    def test_render_table_mixed_types(self):
        text = render_table(["v"], [[1], [2.5], ["s"]], float_format="{:.1f}")
        assert "2.5" in text


class TestInferenceProfileEdges:
    def _profile(self, **kwargs):
        defaults = dict(
            model_name="m",
            platform_name="p",
            platform_kind="cpu",
            batch_size=4,
            compute_seconds=0.0,
            data_comm_seconds=0.0,
            op_time_by_kind={},
        )
        defaults.update(kwargs)
        return InferenceProfile(**defaults)

    def test_zero_time_profile(self):
        p = self._profile()
        assert p.throughput_qps == 0.0
        assert p.data_comm_fraction == 0.0
        assert p.dominant_operator() == ""

    def test_dominant_operator(self):
        p = self._profile(op_time_by_kind={"FC": 0.2, "Relu": 0.1})
        assert p.dominant_operator() == "FC"
