"""Tests for fault injection and the resilient serving engine.

The two load-bearing guarantees:

* **Golden equivalence** — with no faults and no policies, the
  resilient engine reproduces the plain ``QueryScheduler``
  bit-for-bit.
* **Conservation** — under every policy combination, each issued query
  ends in exactly one of completed / shed / dropped, and completed
  queries contribute exactly one latency sample each.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core import SlaBudget, SpeedupStudy
from repro.models import build_model
from repro.resilience import (
    CircuitBreakerPolicy,
    CrashWindow,
    DegradationPolicy,
    DropSpec,
    FaultInjector,
    FaultPlan,
    HedgePolicy,
    PcieDegradationWindow,
    Replica,
    ResiliencePolicy,
    ResilientScheduler,
    RetryPolicy,
    ServerFaults,
    SheddingPolicy,
    SlowdownWindow,
    StragglerSpec,
    hashed_uniform,
)
from repro.runtime import BatchingPolicy, QueryScheduler, ServiceTimeModel


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm1", "rm2")}
    return SpeedupStudy(
        models=models,
        platform_names=["broadwell", "t4"],
        batch_sizes=[1, 16, 64, 256],
    ).run()


@pytest.fixture(scope="module")
def gpu_stm(sweep):
    return ServiceTimeModel(sweep, "rm2", "t4")


@pytest.fixture(scope="module")
def cpu_stm(sweep):
    return ServiceTimeModel(sweep, "rm2", "broadwell")


@pytest.fixture(scope="module")
def lite_stm(sweep):
    return ServiceTimeModel(sweep, "rm1", "t4")


def _fleet(gpu_stm, cpu_stm, lite_stm=None):
    return [
        Replica("t4", gpu_stm, degraded_model=lite_stm),
        Replica("broadwell", cpu_stm),
    ]


class TestFaultSpecs:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlowdownWindow(0.2, 0.1)
        with pytest.raises(ValueError):
            SlowdownWindow(-0.1, 0.1)
        with pytest.raises(ValueError):
            SlowdownWindow(0.0, 0.1, multiplier=0.5)
        with pytest.raises(ValueError):
            CrashWindow(1.0, 1.0)
        with pytest.raises(ValueError):
            PcieDegradationWindow(0.0, 1.0, bandwidth_scale=0.0)
        with pytest.raises(ValueError):
            PcieDegradationWindow(0.0, 1.0, bandwidth_scale=1.5)
        with pytest.raises(ValueError):
            StragglerSpec(probability=1.5)
        with pytest.raises(ValueError):
            DropSpec(probability=-0.1)

    def test_plan_lookup_and_emptiness(self):
        plan = FaultPlan(
            seed=1, servers={"t4": ServerFaults(drops=DropSpec(0.1))}
        )
        assert not plan.empty
        assert plan.for_server("t4").drops.probability == 0.1
        assert plan.for_server("unknown").empty
        assert FaultPlan.none().empty

    def test_synthesize_reproducible(self):
        a = FaultPlan.synthesize(5, ["t4", "bdw"], 1.0, crash_windows=1,
                                 drop_probability=0.01)
        b = FaultPlan.synthesize(5, ["t4", "bdw"], 1.0, crash_windows=1,
                                 drop_probability=0.01)
        assert a == b
        assert "t4" in a.servers and "bdw" not in a.servers  # primary-only
        with pytest.raises(ValueError):
            FaultPlan.synthesize(5, ["t4"], 1.0, targets=["nope"])

    def test_hashed_uniform_stable_and_uniform(self):
        assert hashed_uniform(1, 2, 3) == hashed_uniform(1, 2, 3)
        assert hashed_uniform(1, 2, 3) != hashed_uniform(1, 2, 4)
        draws = [hashed_uniform(9, i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < float(np.mean(draws)) < 0.6


class TestFaultInjector:
    def test_windows(self):
        faults = ServerFaults(
            slowdowns=(SlowdownWindow(1.0, 2.0, 3.0),
                       SlowdownWindow(1.5, 2.5, 2.0)),
            crashes=(CrashWindow(4.0, 5.0),),
            pcie=(PcieDegradationWindow(0.0, 1.0, 0.5),),
        )
        inj = FaultInjector(faults, seed=0, server_name="t4")
        assert inj.slowdown_multiplier(0.5) == 1.0
        assert inj.slowdown_multiplier(1.2) == 3.0
        assert inj.slowdown_multiplier(1.7) == 6.0  # windows compound
        assert inj.pcie_scale(0.5) == 0.5
        assert inj.pcie_scale(1.5) == 1.0
        assert inj.crashed_at(4.5) is not None
        assert inj.crashed_at(5.0) is None
        assert inj.crash_during(3.0, 4.1) is not None
        assert inj.crash_during(3.0, 4.0) is None  # half-open interval
        assert inj.next_available(4.2) == 5.0
        assert inj.next_available(3.0) == 3.0

    def test_keyed_decisions_pure(self):
        faults = ServerFaults(stragglers=StragglerSpec(probability=0.3),
                              drops=DropSpec(probability=0.3))
        a = FaultInjector(faults, seed=11, server_name="t4")
        b = FaultInjector(faults, seed=11, server_name="t4")
        other = FaultInjector(faults, seed=12, server_name="t4")
        mults = [a.straggler_multiplier(i) for i in range(300)]
        assert mults == [b.straggler_multiplier(i) for i in range(300)]
        assert mults != [other.straggler_multiplier(i) for i in range(300)]
        assert all(m >= 1.0 for m in mults)
        assert any(m > 1.0 for m in mults)
        drops = [a.should_drop(q, 0) for q in range(300)]
        assert drops == [b.should_drop(q, 0) for q in range(300)]
        # retries re-roll: attempt is part of the key
        assert [a.should_drop(q, 1) for q in range(300)] != drops

    def test_straggler_capped(self):
        faults = ServerFaults(
            stragglers=StragglerSpec(probability=1.0, alpha=0.1,
                                     max_multiplier=5.0)
        )
        inj = FaultInjector(faults, seed=0, server_name="x")
        assert all(
            1.0 <= inj.straggler_multiplier(i) <= 5.0 for i in range(200)
        )


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=1, max_retries=-1)
        with pytest.raises(ValueError):
            HedgePolicy(delay_s=-1)
        with pytest.raises(ValueError):
            CircuitBreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreakerPolicy(cooldown_s=0)
        with pytest.raises(ValueError):
            SheddingPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            DegradationPolicy(queue_budget_s=-1)

    def test_backoff_capped_exponential(self):
        r = RetryPolicy(deadline_s=1, backoff_base_s=0.001, backoff_cap_s=0.003)
        assert r.backoff_s(0) == 0.001
        assert r.backoff_s(1) == 0.002
        assert r.backoff_s(5) == 0.003  # capped

    def test_empty_bundle(self):
        assert ResiliencePolicy.none().empty
        assert not ResiliencePolicy(retry=RetryPolicy(deadline_s=1)).empty


class TestGoldenEquivalence:
    """Satellite: faults disabled => identical to the plain scheduler."""

    @pytest.mark.parametrize("qps,n,seed", [(3000, 500, 7), (20000, 800, 3)])
    def test_bit_identical_to_query_scheduler(self, gpu_stm, qps, n, seed):
        policy = BatchingPolicy(max_batch=64, batch_timeout_s=0.002)
        legacy = QueryScheduler(gpu_stm, policy, seed=seed).run(qps, n)
        engine = ResilientScheduler(
            [Replica("t4", gpu_stm)], policy, seed=seed
        ).run(qps, n)
        np.testing.assert_array_equal(legacy.latencies_s, engine.latencies_s)
        assert legacy.batch_sizes == engine.batch_sizes
        assert legacy.duration_s == engine.duration_s
        assert engine.completed == n
        assert engine.shed == engine.dropped == 0

    def test_query_scheduler_plain_path_untouched(self, gpu_stm):
        """No keyword extras => the historical code path, same types."""
        policy = BatchingPolicy()
        result = QueryScheduler(gpu_stm, policy, seed=1).run(2000, 200)
        assert type(result).__name__ == "ScheduleResult"

    def test_same_seed_bit_identical_with_faults(self, gpu_stm, cpu_stm,
                                                 lite_stm):
        """Satellite: same fault seed => bit-identical results."""
        plan = FaultPlan.synthesize(
            4, ["t4", "broadwell"], 0.3, slowdown_windows=1, crash_windows=1,
            drop_probability=0.03, straggler_probability=0.05,
        )
        res = ResiliencePolicy(
            retry=RetryPolicy(deadline_s=0.05),
            hedge=HedgePolicy(delay_s=0.005),
            breaker=CircuitBreakerPolicy(2, 0.02),
            shed=SheddingPolicy(deadline_s=0.3),
            degrade=DegradationPolicy(queue_budget_s=0.01),
        )

        def once():
            return ResilientScheduler(
                _fleet(gpu_stm, cpu_stm, lite_stm),
                BatchingPolicy(max_batch=64),
                resilience=res, fault_plan=plan, seed=13,
            ).run(4000, 600)

        a, b = once(), once()
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.batch_sizes == b.batch_sizes
        assert a.fault_counts == b.fault_counts
        assert (a.completed, a.shed, a.dropped, a.retries, a.hedges,
                a.failovers) == (b.completed, b.shed, b.dropped, b.retries,
                                 b.hedges, b.failovers)


def _policy_combos():
    retry = RetryPolicy(deadline_s=0.03, max_retries=2)
    hedge = HedgePolicy(delay_s=0.004)
    breaker = CircuitBreakerPolicy(failure_threshold=2, cooldown_s=0.03)
    shed = SheddingPolicy(deadline_s=0.1)
    degrade = DegradationPolicy(queue_budget_s=0.008)
    return [
        ResiliencePolicy.none(),
        ResiliencePolicy(retry=retry),
        ResiliencePolicy(hedge=hedge),
        ResiliencePolicy(shed=shed, degrade=degrade),
        ResiliencePolicy(retry=retry, breaker=breaker),
        ResiliencePolicy(retry=retry, hedge=hedge, breaker=breaker,
                         shed=shed, degrade=degrade),
    ]


class TestConservation:
    """Satellite: no policy combination loses or duplicates queries."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("combo", range(len(_policy_combos())))
    def test_completed_shed_dropped_partition(self, gpu_stm, cpu_stm,
                                              lite_stm, seed, combo):
        res = _policy_combos()[combo]
        plan = FaultPlan.synthesize(
            seed + 100, ["t4", "broadwell"], 0.15,
            slowdown_windows=1, slowdown_multiplier=4.0, crash_windows=1,
            crash_duration_frac=0.1, drop_probability=0.05,
            straggler_probability=0.08, pcie_windows=1, pcie_scale=0.3,
        )
        n = 400
        result = ResilientScheduler(
            _fleet(gpu_stm, cpu_stm, lite_stm),
            BatchingPolicy(max_batch=32, batch_timeout_s=0.001),
            resilience=res, fault_plan=plan, seed=seed,
        ).run(5000, n)
        assert result.queries == n
        # every query ends in exactly one bucket...
        assert result.completed + result.shed + result.dropped == n
        # ...and retried/hedged queries appear exactly once in the
        # latency pool: one sample per completed query.
        assert len(result.latencies_s) == result.completed
        assert np.all(result.latencies_s > 0)
        assert result.accounting_ok()

    def test_sum_of_batches_bounded(self, gpu_stm, cpu_stm):
        """Primary dispatches can exceed n only through retries."""
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(drops=DropSpec(0.2)),
        })
        res = ResiliencePolicy(retry=RetryPolicy(deadline_s=0.05,
                                                 max_retries=3))
        n = 300
        result = ResilientScheduler(
            _fleet(gpu_stm, cpu_stm), BatchingPolicy(max_batch=16),
            resilience=res, fault_plan=plan, seed=2,
        ).run(3000, n)
        served = sum(result.batch_sizes)
        assert served == n + result.retries
        assert result.dropped < n * 0.05  # retries recover most drops


class TestPolicies:
    def test_retries_recover_crash_losses(self, gpu_stm, cpu_stm):
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(crashes=(CrashWindow(0.02, 0.05),)),
        })
        kwargs = dict(fault_plan=plan, seed=5)
        fleet = [Replica("t4", gpu_stm)]  # no standby: crash really hurts
        bare = ResilientScheduler(
            fleet, BatchingPolicy(), **kwargs
        ).run(4000, 400)
        retried = ResilientScheduler(
            fleet, BatchingPolicy(),
            resilience=ResiliencePolicy(
                retry=RetryPolicy(deadline_s=0.2, max_retries=3)
            ),
            **kwargs,
        ).run(4000, 400)
        assert bare.dropped > 0
        assert bare.fault_counts["crashed_batches"] >= 1
        assert retried.dropped < bare.dropped
        assert retried.retries > 0

    def test_hedging_improves_p99_under_slowdown(self, gpu_stm, cpu_stm):
        """The acceptance scenario: GPU throttles, hedging to the CPU
        standby measurably cuts tail latency."""
        horizon = 1000 / 10000
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(slowdowns=(
                SlowdownWindow(0.3 * horizon, 0.7 * horizon, 5.0),
            )),
        })
        fleet = _fleet(gpu_stm, cpu_stm)
        kwargs = dict(fault_plan=plan, seed=9)
        bare = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64), **kwargs
        ).run(10000, 1000)
        hedged = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64),
            resilience=ResiliencePolicy(hedge=HedgePolicy(delay_s=0.008)),
            **kwargs,
        ).run(10000, 1000)
        assert hedged.hedges > 0
        assert hedged.hedge_wins > 0
        assert hedged.p99 < 0.8 * bare.p99
        assert bare.fault_counts["slowdown_batches"] > 0

    def test_degradation_serves_cheap_variant_under_pressure(
        self, gpu_stm, cpu_stm, lite_stm
    ):
        horizon = 800 / 12000
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(slowdowns=(
                SlowdownWindow(0.2 * horizon, 0.8 * horizon, 6.0),
            )),
        })
        budget = SlaBudget(deadline_s=0.02, queue_fraction=0.5)
        fleet = [Replica("t4", gpu_stm, degraded_model=lite_stm)]
        kwargs = dict(fault_plan=plan, seed=3)
        bare = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64), **kwargs
        ).run(12000, 800)
        degraded = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64),
            resilience=ResiliencePolicy(
                degrade=DegradationPolicy(budget.queue_budget_s)
            ),
            **kwargs,
        ).run(12000, 800)
        assert degraded.degraded_queries > 0
        assert degraded.p99 < bare.p99

    def test_shedding_protects_surviving_queries(self, gpu_stm):
        horizon = 600 / 15000
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(slowdowns=(
                SlowdownWindow(0.0, horizon, 8.0),
            )),
        })
        fleet = [Replica("t4", gpu_stm)]
        kwargs = dict(fault_plan=plan, seed=4)
        bare = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=32), **kwargs
        ).run(15000, 600)
        shedding = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=32),
            resilience=ResiliencePolicy(
                shed=SheddingPolicy(deadline_s=0.02)
            ),
            **kwargs,
        ).run(15000, 600)
        assert shedding.shed > 0
        assert shedding.completed + shedding.shed == 600
        assert shedding.p99 < bare.p99  # survivors meet a tighter tail

    def test_breaker_trips_and_fails_over(self, gpu_stm, cpu_stm):
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(drops=DropSpec(probability=0.9)),
        })
        res = ResiliencePolicy(
            retry=RetryPolicy(deadline_s=0.05, max_retries=3),
            breaker=CircuitBreakerPolicy(failure_threshold=3,
                                         cooldown_s=0.05),
        )
        result = ResilientScheduler(
            _fleet(gpu_stm, cpu_stm), BatchingPolicy(max_batch=16),
            resilience=res, fault_plan=plan, seed=6,
        ).run(3000, 400)
        assert result.breaker_trips > 0
        assert result.failovers > 0
        assert result.completed > 350  # the healthy standby absorbs the load

    def test_pcie_degradation_slows_gpu_batches(self, gpu_stm):
        horizon = 400 / 8000
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(pcie=(
                PcieDegradationWindow(0.0, horizon, bandwidth_scale=0.1),
            )),
        })
        fleet = [Replica("t4", gpu_stm)]
        healthy = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64), seed=8
        ).run(8000, 400)
        degraded = ResilientScheduler(
            fleet, BatchingPolicy(max_batch=64), fault_plan=plan, seed=8
        ).run(8000, 400)
        assert degraded.fault_counts["pcie_degraded_batches"] > 0
        assert degraded.p50 > healthy.p50

    def test_whole_fleet_down_queries_wait_for_recovery(self, gpu_stm):
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(crashes=(CrashWindow(0.0, 0.05),)),
        })
        result = ResilientScheduler(
            [Replica("t4", gpu_stm)], BatchingPolicy(), fault_plan=plan,
            seed=1,
        ).run(2000, 100)
        assert result.completed == 100
        # The earliest query (arriving ~t=0) waited out the full outage.
        assert result.latencies_s[0] > 0.045


class TestSchedulerIntegration:
    def test_query_scheduler_delegates(self, gpu_stm, cpu_stm, lite_stm):
        plan = FaultPlan(seed=2, servers={
            "t4": ServerFaults(drops=DropSpec(0.05)),
        })
        scheduler = QueryScheduler(
            gpu_stm, BatchingPolicy(), seed=11,
            fault_plan=plan,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(deadline_s=0.1)
            ),
            standbys=[cpu_stm],
            degraded_model=lite_stm,
        )
        result = scheduler.run(3000, 300)
        assert result.accounting_ok()
        assert result.queries == 300
        # Delegation mirrors a hand-built fleet exactly.
        direct = ResilientScheduler(
            [Replica("t4", gpu_stm, degraded_model=lite_stm),
             Replica("broadwell", cpu_stm)],
            BatchingPolicy(),
            resilience=ResiliencePolicy(retry=RetryPolicy(deadline_s=0.1)),
            fault_plan=plan, seed=11,
        ).run(3000, 300)
        np.testing.assert_array_equal(result.latencies_s, direct.latencies_s)

    def test_duplicate_platform_standby_gets_unique_name(self, gpu_stm):
        scheduler = QueryScheduler(
            gpu_stm, BatchingPolicy(), seed=1, standbys=[gpu_stm],
        )
        result = scheduler.run(2000, 100)
        assert result.accounting_ok()

    def test_replica_validation(self, gpu_stm):
        with pytest.raises(ValueError, match="at least one replica"):
            ResilientScheduler([], BatchingPolicy())
        with pytest.raises(ValueError, match="unique"):
            ResilientScheduler(
                [Replica("t4", gpu_stm), Replica("t4", gpu_stm)],
                BatchingPolicy(),
            )

    def test_run_validation(self, gpu_stm):
        scheduler = ResilientScheduler([Replica("t4", gpu_stm)],
                                       BatchingPolicy())
        with pytest.raises(ValueError, match="arrival rate"):
            scheduler.run(0)
        with pytest.raises(ValueError, match="arrival rate"):
            scheduler.run(float("nan"))
        with pytest.raises(ValueError, match="at least one query"):
            scheduler.run(100, 0)


class TestTelemetryIntegration:
    def test_counters_and_spans_recorded(self, gpu_stm, cpu_stm, lite_stm):
        horizon = 400 / 6000
        plan = FaultPlan(seed=1, servers={
            "t4": ServerFaults(
                slowdowns=(SlowdownWindow(0.2 * horizon, 0.8 * horizon, 4.0),),
                crashes=(CrashWindow(0.85 * horizon, 0.9 * horizon),),
                drops=DropSpec(0.05),
            ),
        })
        res = ResiliencePolicy(
            retry=RetryPolicy(deadline_s=0.08, max_retries=2),
            hedge=HedgePolicy(delay_s=0.004),
            shed=SheddingPolicy(deadline_s=0.5),
            degrade=DegradationPolicy(queue_budget_s=0.006),
        )
        scheduler = ResilientScheduler(
            _fleet(gpu_stm, cpu_stm, lite_stm),
            BatchingPolicy(max_batch=32),
            resilience=res, fault_plan=plan, seed=21,
        )
        with telemetry.capture() as (tracer, registry):
            result = scheduler.run(6000, 400)

        labels = dict(model="rm2", platform="t4")

        def counter(name):
            metric = registry.find(name, **labels)
            return metric.value if metric is not None else 0.0

        assert counter("resilience.queries") == 400
        assert counter("resilience.completed") == result.completed
        assert counter("resilience.dropped") == result.dropped
        assert counter("resilience.shed") == result.shed
        assert counter("resilience.retries") == result.retries
        assert counter("resilience.hedges") == result.hedges
        assert counter("resilience.faults.slowdown_batches") == \
            result.fault_counts["slowdown_batches"]
        assert counter("resilience.faults.crashed_batches") == \
            result.fault_counts["crashed_batches"]
        assert counter("resilience.faults.dropped_responses") == \
            result.fault_counts["dropped_responses"]

        spans = tracer.sorted_spans()
        categories = {s.category for s in spans}
        assert "resilience.server" in categories
        assert "resilience.fault" in categories
        assert "resilience.hedge" in categories
        # Fault windows are visible as spans on the faulty replica's track.
        fault_spans = [s for s in spans if s.category == "resilience.fault"]
        assert any("slowdown" in s.name for s in fault_spans)
        assert any("crash" in s.name for s in fault_spans)
        # Batch spans carry occupancy for the trace viewer.
        server_spans = [s for s in spans if s.category == "resilience.server"]
        assert all("batch" in s.attrs for s in server_spans)

    def test_telemetry_off_is_silent(self, gpu_stm):
        telemetry.reset()
        result = ResilientScheduler(
            [Replica("t4", gpu_stm)], BatchingPolicy(), seed=1
        ).run(2000, 100)
        assert result.completed == 100
        assert len(telemetry.get_registry()) == 0


class TestFaultPlanValidation:
    """Satellite: malformed plans fail fast, naming the bad window."""

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(ValueError, match=(
            r"target 't4': crash window \[0\.4, 0\.8\) overlaps "
            r"\[0\.2, 0\.5\)"
        )):
            FaultPlan(seed=0, servers={
                "t4": ServerFaults(
                    crashes=(CrashWindow(0.2, 0.5), CrashWindow(0.4, 0.8)),
                ),
            })

    def test_crash_overlap_checked_per_target(self):
        # the same windows on different targets are fine
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(crashes=(CrashWindow(0.2, 0.5),)),
            "broadwell": ServerFaults(crashes=(CrashWindow(0.3, 0.6),)),
        })
        assert not plan.empty

    def test_touching_crash_windows_allowed(self):
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(
                crashes=(CrashWindow(0.2, 0.5), CrashWindow(0.5, 0.8)),
            ),
        })
        assert len(plan.servers["t4"].crashes) == 2

    def test_overlapping_slowdown_windows_allowed(self):
        # slowdowns compound multiplicatively by design
        plan = FaultPlan(seed=0, servers={
            "t4": ServerFaults(slowdowns=(
                SlowdownWindow(0.1, 0.6, 2.0), SlowdownWindow(0.3, 0.9, 3.0),
            )),
        })
        assert len(plan.servers["t4"].slowdowns) == 2

    @pytest.mark.parametrize("start,end", [(0.5, 0.5), (0.5, 0.2), (-0.1, 0.4)])
    def test_degenerate_window_rejected_at_construction(self, start, end):
        with pytest.raises(ValueError, match="0 <= start < end"):
            SlowdownWindow(start, end, 2.0)
        with pytest.raises(ValueError, match="0 <= start < end"):
            CrashWindow(start, end)

    def test_plan_recheck_names_target_and_window(self):
        """Plans built from duck-typed windows are re-validated."""
        from types import SimpleNamespace

        bad = SimpleNamespace(start_s=0.5, end_s=0.5)
        with pytest.raises(ValueError, match=(
            r"target 'gpu0': crash window \[0\.5, 0\.5\) is negative or "
            "zero-length"
        )):
            FaultPlan(seed=0, servers={
                "gpu0": ServerFaults(crashes=(bad,)),
            })

    def test_network_degradation_alias(self):
        from repro.resilience import NetworkDegradationWindow

        assert NetworkDegradationWindow is PcieDegradationWindow

    @pytest.mark.parametrize("seed", range(8))
    def test_synthesized_crash_windows_never_overlap(self, seed):
        """Dense draws are serialized instead of tripping validation."""
        plan = FaultPlan.synthesize(
            seed, ["a", "b"], 1.0, slowdown_windows=0, crash_windows=5,
            crash_duration_frac=0.3, targets=["a", "b"],
        )
        for faults in plan.servers.values():
            crashes = sorted(faults.crashes, key=lambda w: w.start_s)
            for prev, cur in zip(crashes, crashes[1:]):
                assert cur.start_s >= prev.end_s

    def test_straggler_redraws_by_attempt(self):
        inj = FaultInjector(
            ServerFaults(stragglers=StragglerSpec(probability=0.5)), 3, "t4"
        )
        base = [inj.straggler_multiplier(i) for i in range(64)]
        legacy = [inj.straggler_multiplier(i, attempt=0) for i in range(64)]
        redrawn = [inj.straggler_multiplier(i, attempt=1) for i in range(64)]
        # attempt 0 reproduces the legacy keying exactly...
        assert base == legacy
        # ...while a hedged reissue gets genuinely fresh luck
        assert base != redrawn
