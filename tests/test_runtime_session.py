"""Tests for the runtime session layer."""

import numpy as np
import pytest

from repro.hw import BROADWELL, T4
from repro.models import build_model
from repro.runtime import InferenceSession
from repro.uarch import DEFAULT_CONSTANTS
from repro.workloads import QueryGenerator


class TestInferenceSession:
    def test_cpu_profile_has_events(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        profile = session.profile(16)
        assert profile.platform_kind == "cpu"
        assert profile.events is not None
        assert profile.events.cycles > 0

    def test_gpu_profile_has_no_events(self):
        session = InferenceSession(build_model("rm1"), "t4")
        profile = session.profile(16)
        assert profile.platform_kind == "gpu"
        assert profile.events is None

    def test_platform_accepts_spec_objects(self):
        assert InferenceSession(build_model("ncf"), BROADWELL).platform is BROADWELL
        assert InferenceSession(build_model("ncf"), T4).platform is T4

    def test_constants_rejected_for_gpu(self):
        with pytest.raises(ValueError):
            InferenceSession(build_model("ncf"), "t4", constants=DEFAULT_CONSTANTS)

    def test_graph_cached_per_batch(self):
        session = InferenceSession(build_model("ncf"), "broadwell")
        assert session.graph(16) is session.graph(16)
        assert session.graph(16) is not session.graph(32)

    def test_run_executes_numerically(self):
        model = build_model("ncf")
        session = InferenceSession(model, "broadwell")
        feeds = QueryGenerator(model).generate(4)
        (out,) = session.run(feeds).values()
        assert out.shape == (4, 1)

    def test_run_generated(self):
        session = InferenceSession(build_model("rm1"), "t4")
        (out,) = session.run_generated(4).values()
        assert out.shape[0] == 4
        assert np.all(np.isfinite(out))

    def test_profile_totals_consistent(self):
        session = InferenceSession(build_model("rm2"), "gtx1080ti")
        profile = session.profile(256)
        assert profile.total_seconds == pytest.approx(
            profile.compute_seconds + profile.data_comm_seconds
        )
        assert 0.0 <= profile.data_comm_fraction <= 1.0

    def test_throughput(self):
        session = InferenceSession(build_model("ncf"), "broadwell")
        profile = session.profile(256)
        assert profile.throughput_qps == pytest.approx(
            256 / profile.total_seconds
        )

    def test_dominant_operator_present_in_breakdown(self):
        session = InferenceSession(build_model("rm2"), "broadwell")
        profile = session.profile(64)
        assert profile.dominant_operator() in profile.op_time_by_kind

    def test_functional_and_performance_same_graph(self):
        """The performance model profiles the very graph that computes."""
        model = build_model("ncf")
        session = InferenceSession(model, "broadwell")
        profile = session.profile(4)
        feeds = QueryGenerator(model).generate(4)
        session.run(feeds)
        assert profile.batch_size == 4
        assert set(profile.op_time_by_kind) == set(session.graph(4).kinds())
