"""Tests for batch-scaling analysis and the classical-MF baseline."""

import numpy as np
import pytest

from repro.core import (
    SpeedupStudy,
    characterize,
    crossover_batch,
    crossover_table,
    fit_scaling,
)
from repro.graph import execute
from repro.models import MatrixFactorization, build_model
from repro.workloads import QueryGenerator


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm2", "rm3", "din")}
    return SpeedupStudy(
        models=models, batch_sizes=[1, 16, 64, 256, 1024, 4096, 16384]
    ).run()


class TestScalingFit:
    def test_exponent_near_one_at_scale(self, sweep):
        fit = fit_scaling(sweep, "rm2", "broadwell")
        assert 0.6 < fit.exponent < 1.1
        assert fit.r_squared > 0.9

    def test_gpu_more_sublinear_than_cpu(self, sweep):
        """GPU latency amortizes launch/copy overheads with batch."""
        cpu = fit_scaling(sweep, "rm3", "broadwell")
        gpu = fit_scaling(sweep, "rm3", "t4")
        assert gpu.exponent < cpu.exponent
        assert gpu.amortizes_overhead

    def test_coefficient_positive(self, sweep):
        fit = fit_scaling(sweep, "din", "t4")
        assert fit.coefficient > 0


class TestCrossover:
    def test_rm3_crossover_early(self, sweep):
        """The Fig 5 boundary: the GPU overtakes RM3 early (the paper's
        2-4x small-batch regime for the FC-heavy row)."""
        cross = crossover_batch(sweep, "rm3", "t4")
        assert cross is not None
        assert cross < 512

    def test_din_crossover_later_than_rm3(self, sweep):
        rm3 = crossover_batch(sweep, "rm3", "t4")
        din = crossover_batch(sweep, "din", "t4")
        assert din is not None and rm3 is not None
        assert din > rm3

    def test_cascade_lake_always_wins_means_min_batch(self, sweep):
        cross = crossover_batch(sweep, "rm2", "cascade_lake")
        assert cross == 1.0  # CLX beats BDW from batch 1

    def test_never_winning_platform_returns_none(self, sweep):
        # Broadwell never overtakes Cascade Lake.
        assert crossover_batch(sweep, "rm2", "broadwell", "cascade_lake") is None

    def test_crossover_table_covers_models(self, sweep):
        table = crossover_table(sweep)
        assert set(table) == {"rm2", "rm3", "din"}


class TestMatrixFactorization:
    def test_executes_and_scores(self):
        model = MatrixFactorization()
        feeds = QueryGenerator(model).generate(8)
        (out,) = execute(model.build_graph(8), feeds).values()
        assert out.shape == (8,)
        assert np.all((out >= 0) & (out <= 1))

    def test_dot_product_semantics(self):
        model = MatrixFactorization(num_users=100, num_items=100, latent_dim=8)
        idx = np.array([[3]], dtype=np.int64)
        feeds = {"user_ids": idx, "item_ids": idx}
        (out,) = execute(model.build_graph(1), feeds).values()
        u = model._user_table.data[3]
        v = model._item_table.data[3]
        expected = 1.0 / (1.0 + np.exp(-(u @ v)))
        np.testing.assert_allclose(out, [expected], rtol=1e-5)

    def test_orders_of_magnitude_lighter_than_deep_models(self):
        mf = characterize(MatrixFactorization(), "broadwell", 64)
        rm3 = characterize("rm3", "broadwell", 64)
        assert mf.total_seconds < rm3.total_seconds / 20

    def test_no_fc_pressure(self):
        report = characterize(MatrixFactorization(), "broadwell", 64)
        assert report.microarch is not None
        assert report.microarch.avx_fraction < 0.5
        assert "FC" not in report.operator_breakdown.shares
