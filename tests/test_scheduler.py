"""Tests for the query-scheduling simulation."""

import numpy as np
import pytest

from repro.core import SpeedupStudy
from repro.models import build_model
from repro.runtime import BatchingPolicy, QueryScheduler, ScheduleResult, ServiceTimeModel


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm2", "rm3")}
    return SpeedupStudy(models=models, batch_sizes=[1, 16, 256, 4096]).run()


class TestServiceTimeModel:
    def test_exact_at_profiled_points(self, sweep):
        stm = ServiceTimeModel(sweep, "rm3", "t4")
        for batch in (1, 16, 256, 4096):
            assert stm.seconds(batch) == pytest.approx(
                sweep.total_seconds("rm3", "t4", batch)
            )

    def test_interpolation_monotonic(self, sweep):
        stm = ServiceTimeModel(sweep, "rm3", "broadwell")
        times = [stm.seconds(b) for b in (1, 3, 16, 40, 256, 1000, 4096)]
        assert times == sorted(times)

    def test_clamps_beyond_grid(self, sweep):
        """Outside the profiled knots the model clamps, never extrapolates."""
        stm = ServiceTimeModel(sweep, "rm2", "broadwell")
        assert stm.seconds(8192) == stm.seconds(4096)
        assert stm.seconds(10 ** 9) == stm.seconds(4096)
        assert stm.seconds(1) == stm.seconds(1)  # smallest knot is exact

    def test_invalid_batch(self, sweep):
        stm = ServiceTimeModel(sweep, "rm2", "t4")
        for bad in (0, -1, -100):
            with pytest.raises(ValueError, match="batch size must be >= 1"):
                stm.seconds(bad)

    def test_comm_seconds_interpolates(self, sweep):
        stm = ServiceTimeModel(sweep, "rm2", "t4")
        for batch in (1, 16, 256, 4096):
            assert stm.comm_seconds(batch) == pytest.approx(
                sweep.profile("rm2", "t4", batch).data_comm_seconds
            )
        assert 0.0 < stm.comm_seconds(64) < stm.seconds(64)
        assert stm.comm_seconds(8192) == stm.comm_seconds(4096)

    def test_rejects_bad_knots(self, sweep):
        stm = ServiceTimeModel(sweep, "rm2", "t4")
        with pytest.raises(ValueError, match="empty knots"):
            stm._set_knots([], [])
        with pytest.raises(ValueError, match="non-monotone"):
            stm._set_knots([1, 16, 16, 256], [1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ValueError, match="non-monotone"):
            stm._set_knots([16, 1], [1.0, 2.0])
        with pytest.raises(ValueError, match="finite"):
            stm._set_knots([1, 16], [1.0, float("nan")])
        with pytest.raises(ValueError, match=">= 1"):
            stm._set_knots([0, 16], [1.0, 2.0])


class TestBatchingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchingPolicy(batch_timeout_s=-1)


class TestScheduler:
    def _scheduler(self, sweep, model="rm3", platform="t4", **policy_kwargs):
        policy = BatchingPolicy(**policy_kwargs)
        return QueryScheduler(ServiceTimeModel(sweep, model, platform), policy)

    def test_all_queries_served(self, sweep):
        result = self._scheduler(sweep).run(arrival_qps=5000, num_queries=500)
        assert result.queries == 500
        assert len(result.latencies_s) == 500
        assert np.all(result.latencies_s > 0)

    def test_percentiles_ordered(self, sweep):
        result = self._scheduler(sweep).run(arrival_qps=5000, num_queries=800)
        assert result.p50 <= result.p95 <= result.p99

    def test_latency_grows_with_load(self, sweep):
        scheduler = self._scheduler(sweep, max_batch=256)
        light = scheduler.run(arrival_qps=1000, num_queries=800)
        heavy = scheduler.run(arrival_qps=40000, num_queries=800)
        assert heavy.p99 > light.p99

    def test_batches_fill_under_load(self, sweep):
        scheduler = self._scheduler(sweep, max_batch=256, batch_timeout_s=0.001)
        light = scheduler.run(arrival_qps=500, num_queries=400)
        heavy = scheduler.run(arrival_qps=100_000, num_queries=2000)
        assert heavy.mean_batch_size > 4 * light.mean_batch_size
        assert max(heavy.batch_sizes) <= 256

    def test_batch_cap_respected(self, sweep):
        scheduler = self._scheduler(sweep, max_batch=8)
        result = scheduler.run(arrival_qps=50_000, num_queries=500)
        assert max(result.batch_sizes) <= 8

    def test_sla_check(self, sweep):
        result = self._scheduler(sweep).run(arrival_qps=1000, num_queries=400)
        assert result.meets_sla(10.0)
        assert not result.meets_sla(1e-9)

    def test_deterministic_with_seed(self, sweep):
        stm = ServiceTimeModel(sweep, "rm3", "t4")
        policy = BatchingPolicy()
        r1 = QueryScheduler(stm, policy, seed=3).run(2000, 300)
        r2 = QueryScheduler(stm, policy, seed=3).run(2000, 300)
        np.testing.assert_array_equal(r1.latencies_s, r2.latencies_s)

    def test_invalid_inputs(self, sweep):
        scheduler = self._scheduler(sweep)
        for bad_qps in (0, -5, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="arrival rate"):
                scheduler.run(arrival_qps=bad_qps)
        for bad_n in (0, -1):
            with pytest.raises(ValueError, match="at least one query"):
                scheduler.run(arrival_qps=100, num_queries=bad_n)
        with pytest.raises(ValueError, match="integer"):
            scheduler.run(arrival_qps=100, num_queries=12.5)

    def test_max_load_under_sla(self, sweep):
        scheduler = self._scheduler(sweep, max_batch=256)
        capacity = scheduler.max_load_under_sla(
            sla_seconds=0.1, num_queries=500
        )
        assert capacity > 0

    def test_gpu_sustains_more_load_than_cpu_for_fc_model(self, sweep):
        """The at-scale version of Fig 3: under a loose SLA the GPU
        server sustains far more RM3 load than a Broadwell server."""
        gpu = self._scheduler(sweep, "rm3", "t4", max_batch=1024)
        cpu = self._scheduler(sweep, "rm3", "broadwell", max_batch=1024)
        sla = 0.25
        gpu_cap = gpu.max_load_under_sla(sla, num_queries=600)
        cpu_cap = cpu.max_load_under_sla(sla, num_queries=600)
        assert gpu_cap > 2 * cpu_cap
