"""Tests for the SLA, energy, and roofline analysis extensions."""

import pytest

from repro.core import (
    SpeedupStudy,
    efficiency_grid,
    energy_per_inference,
    graph_workload,
    max_batch_under_sla,
    roofline_point,
    sla_frontier,
)
from repro.models import build_model


@pytest.fixture(scope="module")
def sweep():
    models = {n: build_model(n) for n in ("rm2", "rm3")}
    return SpeedupStudy(models=models, batch_sizes=[1, 16, 256, 4096]).run()


class TestSla:
    def test_loose_sla_allows_larger_batches(self, sweep):
        tight = max_batch_under_sla(sweep, "rm3", "t4", 0.002)
        loose = max_batch_under_sla(sweep, "rm3", "t4", 0.5)
        assert loose.batch_size >= (tight.batch_size or 0)
        assert loose.throughput_qps >= tight.throughput_qps

    def test_impossible_sla_infeasible(self, sweep):
        point = max_batch_under_sla(sweep, "rm2", "broadwell", 1e-9)
        assert not point.feasible
        assert point.throughput_qps == 0.0

    def test_invalid_sla_rejected(self, sweep):
        with pytest.raises(ValueError):
            max_batch_under_sla(sweep, "rm2", "t4", 0.0)

    def test_latency_meets_sla_when_feasible(self, sweep):
        point = max_batch_under_sla(sweep, "rm2", "cascade_lake", 0.01)
        assert point.feasible
        assert point.latency_seconds <= 0.01

    def test_frontier_prefers_cpu_under_tight_sla_for_rm2(self, sweep):
        frontier = sla_frontier(sweep, "rm2", sla_tiers=(0.0015, 0.5))
        tight, loose = frontier[0.0015], frontier[0.5]
        assert tight.platform in ("broadwell", "cascade_lake")
        assert loose.throughput_qps > tight.throughput_qps

    def test_frontier_prefers_gpu_under_loose_sla_for_rm3(self, sweep):
        frontier = sla_frontier(sweep, "rm3", sla_tiers=(0.5,))
        assert frontier[0.5].platform in ("gtx1080ti", "t4")


class TestEnergy:
    def test_energy_positive_and_scaled_by_tdp(self, sweep):
        bdw = energy_per_inference(sweep, "rm3", "broadwell", 256)
        t4 = energy_per_inference(sweep, "rm3", "t4", 256)
        assert bdw.joules_per_batch > 0
        assert bdw.watts == pytest.approx(145 * 0.45)
        assert t4.watts == pytest.approx(70 * 0.6)

    def test_t4_most_efficient_for_fc_models_at_large_batch(self, sweep):
        grid = efficiency_grid(sweep, 4096)
        best = min(
            grid["rm3"].values(), key=lambda e: e.millijoules_per_query
        )
        assert best.platform == "t4"  # 70 W + ~13x speedup

    def test_queries_per_joule_inverse_of_energy(self, sweep):
        est = energy_per_inference(sweep, "rm2", "cascade_lake", 256)
        assert est.queries_per_joule == pytest.approx(
            1.0 / (est.millijoules_per_query / 1e3)
        )


class TestRoofline:
    def test_graph_workload_aggregates(self):
        model = build_model("rm3")
        workload = graph_workload(model.build_graph(16))
        assert workload.flops > 1e8
        assert workload.bytes_read > 0

    def test_rm3_higher_intensity_than_rm2(self):
        rm3 = roofline_point(build_model("rm3"), "broadwell", 256)
        rm2 = roofline_point(build_model("rm2"), "broadwell", 256)
        assert rm3.arithmetic_intensity > 5 * rm2.arithmetic_intensity

    def test_rm2_memory_bound_on_gpus(self):
        """Classic roofline: RM2's gather traffic sits far left of the
        GPU ridge points (bandwidth-limited), while on CPUs it lands
        near the ridge — its CPU bottleneck is gather *latency*, which
        the bandwidth roofline cannot see (Fig 14's occupancy analysis
        covers that)."""
        for platform in ("gtx1080ti", "t4"):
            point = roofline_point(build_model("rm2"), platform, 1024)
            assert not point.compute_bound
            assert point.compute_fraction_of_peak < 0.5
        cpu_point = roofline_point(build_model("rm2"), "broadwell", 1024)
        assert 0.3 < cpu_point.arithmetic_intensity / cpu_point.ridge_point < 4.0

    def test_ridge_point_sane(self):
        point = roofline_point(build_model("rm3"), "broadwell", 16)
        # BDW: ~166 GF peak over 77 GB/s -> ridge ~2.2 flops/byte.
        assert 1.0 < point.ridge_point < 4.0

    def test_attainable_capped_by_peak(self):
        point = roofline_point(build_model("rm3"), "t4", 16384)
        assert point.attainable_flops <= point.peak_flops
