"""Spec-mode profiling: bit-identity to the numeric path, cache
behaviour, and the buffer-reuse planner.

The tentpole guarantee is exact: for every zoo model, batch size, and
platform — raw and optimized graphs alike — spec mode's per-op seconds,
bytes, FLOP-derived PMU events, and end-to-end splits must equal the
scalar models' values bit for bit (``==``, not approx). Anything less
would fork the characterization into two subtly different stories.
"""

import numpy as np
import pytest

from repro.core import SpeedupStudy
from repro.graph import optimize, plan_buffers, execute
from repro.gpusim import GpuModel
from repro.hw import PLATFORM_ORDER, platform_by_name
from repro.models import MODEL_ORDER, build_model
from repro.ops import materialization_count, reset_materialization_count
from repro.runtime import InferenceSession, clear_graph_cache
from repro.runtime import specmode
from repro.uarch import CpuModel
from repro.workloads import QueryGenerator
from repro import telemetry

BATCHES = [1, 64, 16384]


def _numeric_profile(graph, platform_name, input_nbytes):
    spec = platform_by_name(platform_name)
    if spec.kind == "cpu":
        return CpuModel(spec).profile_graph(
            graph, input_bytes=sum(input_nbytes)
        )
    return GpuModel(spec).profile_graph(
        graph, input_tensor_bytes=list(input_nbytes)
    )


def _spec_profile(graph, platform_name, input_nbytes):
    table = specmode.table_from_graph(graph, input_nbytes)
    stacked = specmode.stack_tables([table])
    return specmode._evaluate(stacked, platform_by_name(platform_name))[0].raw


def _assert_cpu_identical(spec_raw, num_raw):
    assert spec_raw.compute_seconds == num_raw.compute_seconds
    assert spec_raw.data_load_seconds == num_raw.data_load_seconds
    assert spec_raw.time_by_kind() == num_raw.time_by_kind()
    assert list(spec_raw.time_by_kind()) == list(num_raw.time_by_kind())
    assert spec_raw.events.as_dict() == num_raw.events.as_dict()
    assert len(spec_raw.op_profiles) == len(num_raw.op_profiles)
    for s, n in zip(spec_raw.op_profiles, num_raw.op_profiles):
        assert s.node_name == n.node_name
        assert s.op_kind == n.op_kind
        assert s.cycles == n.cycles
        assert s.execution_cycles == n.execution_cycles
        assert s.memory_stall_cycles == n.memory_stall_cycles
        assert s.frontend_stall_cycles == n.frontend_stall_cycles
        assert s.bad_speculation_cycles == n.bad_speculation_cycles
        assert s.core_bound_cycles == n.core_bound_cycles
        assert s._time_seconds == n._time_seconds
        assert s.events.as_dict() == n.events.as_dict()


def _assert_gpu_identical(spec_raw, num_raw):
    assert spec_raw.compute_seconds == num_raw.compute_seconds
    assert spec_raw.data_comm_seconds == num_raw.data_comm_seconds
    assert spec_raw.transfer.seconds == num_raw.transfer.seconds
    assert spec_raw.time_by_kind() == num_raw.time_by_kind()
    assert list(spec_raw.time_by_kind()) == list(num_raw.time_by_kind())
    assert len(spec_raw.op_profiles) == len(num_raw.op_profiles)
    for s, n in zip(spec_raw.op_profiles, num_raw.op_profiles):
        assert s.node_name == n.node_name
        assert s.op_kind == n.op_kind
        assert s.device.op_kind == n.device.op_kind
        assert s.device.kernel_count == n.device.kernel_count
        assert s.device.launch_seconds == n.device.launch_seconds
        assert s.device.compute_seconds == n.device.compute_seconds
        assert s.device.memory_seconds == n.device.memory_seconds


class TestBitIdentity:
    """Spec mode == numeric mode, exactly, for every configuration."""

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_raw_and_optimized_graphs_identical(self, name):
        model = build_model(name)
        for batch in BATCHES:
            input_nbytes = [
                d.spec.nbytes for d in model.input_descriptions(batch)
            ]
            raw_graph = model.build_graph(batch)
            for graph in (raw_graph, optimize(raw_graph)):
                for platform_name in PLATFORM_ORDER:
                    num = _numeric_profile(graph, platform_name, input_nbytes)
                    spec = _spec_profile(graph, platform_name, input_nbytes)
                    if platform_by_name(platform_name).kind == "cpu":
                        _assert_cpu_identical(spec, num)
                    else:
                        _assert_gpu_identical(spec, num)

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_session_spec_mode_matches_numeric(self, name):
        model = build_model(name)
        for platform_name in ("broadwell", "t4"):
            session = InferenceSession(model, platform_name)
            num = session.profile(64)
            spec = session.profile(64, mode="spec")
            assert spec.compute_seconds == num.compute_seconds
            assert spec.data_comm_seconds == num.data_comm_seconds
            assert spec.op_time_by_kind == num.op_time_by_kind
            assert (spec.events is None) == (num.events is None)
            if num.events is not None:
                assert spec.events.as_dict() == num.events.as_dict()
            assert spec.model_name == num.model_name
            assert spec.platform_name == num.platform_name
            assert spec.platform_kind == num.platform_kind
            assert spec.summary_scalars() == num.summary_scalars()

    def test_session_rejects_unknown_mode(self):
        session = InferenceSession(build_model("ncf"), "broadwell")
        with pytest.raises(ValueError):
            session.profile(8, mode="eager")

    def test_sweep_spec_mode_matches_serial(self):
        models = {n: build_model(n) for n in MODEL_ORDER}
        serial = SpeedupStudy(models=models, batch_sizes=[1, 64]).run()
        spec = SpeedupStudy(models=models, batch_sizes=[1, 64]).run(
            profile_mode="spec"
        )
        assert list(serial.profiles) == list(spec.profiles)
        for key, num in serial.profiles.items():
            got = spec.profiles[key]
            assert got.compute_seconds == num.compute_seconds
            assert got.data_comm_seconds == num.data_comm_seconds
            assert got.op_time_by_kind == num.op_time_by_kind
            if num.events is not None:
                assert got.events.as_dict() == num.events.as_dict()

    def test_sweep_rejects_unknown_profile_mode(self):
        with pytest.raises(ValueError):
            SpeedupStudy(
                models={"ncf": build_model("ncf")}, batch_sizes=[1]
            ).run(profile_mode="tensor")


class TestNoTensorData:
    def test_spec_sweep_materializes_nothing(self):
        clear_graph_cache()
        specmode.clear_spec_caches()
        reset_materialization_count()
        models = {n: build_model(n) for n in MODEL_ORDER}
        specmode.profile_spec_sweep(models, list(PLATFORM_ORDER), [1, 64])
        assert materialization_count() == 0


class TestSpecCaches:
    def test_table_cache_hit_on_equivalent_model(self):
        specmode.clear_spec_caches()
        specmode.get_workload_table(build_model("ncf"), 16)
        before = specmode.spec_cache_stats()
        specmode.get_workload_table(build_model("ncf"), 16)
        after = specmode.spec_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_repeat_sweep_returns_memoized_profiles(self):
        specmode.clear_spec_caches()
        models = {n: build_model(n) for n in ("ncf", "rm1")}
        first = specmode.profile_spec_sweep(models, ["broadwell"], [1, 64])
        # Fresh-but-equivalent model objects hit the table cache, which
        # keys the sweep memo: identical profile objects come back.
        rebuilt = {n: build_model(n) for n in ("ncf", "rm1")}
        second = specmode.profile_spec_sweep(rebuilt, ["broadwell"], [1, 64])
        assert list(first) == list(second)
        for key in first:
            assert first[key] is second[key]
        assert specmode.spec_cache_stats()["sweep_entries"] == 1

    def test_new_platform_extends_existing_entry(self):
        specmode.clear_spec_caches()
        models = {"ncf": build_model("ncf")}
        specmode.profile_spec_sweep(models, ["broadwell"], [1])
        specmode.profile_spec_sweep(models, ["broadwell", "t4"], [1])
        assert specmode.spec_cache_stats()["sweep_entries"] == 1

    def test_clear_resets(self):
        models = {"ncf": build_model("ncf")}
        specmode.profile_spec_sweep(models, ["broadwell"], [1])
        specmode.clear_spec_caches()
        stats = specmode.spec_cache_stats()
        assert stats["size"] == 0
        assert stats["sweep_entries"] == 0


class TestBufferPlan:
    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_peak_matches_executor(self, name):
        model = build_model(name)
        graph = model.build_graph(8)
        plan = plan_buffers(graph)
        feeds = QueryGenerator(model, seed=3).generate(8)
        with telemetry.capture() as (_, registry):
            execute(graph, feeds)
        observed = [
            m["value"]
            for m in registry.snapshot()
            if m["name"] == "executor.peak_live_bytes"
        ]
        assert observed, "executor did not record peak_live_bytes"
        assert int(observed[0]) == plan.peak_live_bytes

    @pytest.mark.parametrize("name", MODEL_ORDER)
    def test_reuse_never_exceeds_naive(self, name):
        graph = build_model(name).build_graph(16)
        plan = plan_buffers(graph)
        assert 0 < plan.peak_live_bytes <= plan.naive_bytes
        assert plan.slot_count <= len(graph)
        assert 0.0 <= plan.reuse_fraction < 1.0
        assert len(plan.timeline) == len(graph)
        assert len(plan.assignments) == len(graph)

    def test_slots_are_reused_across_lifetimes(self):
        # A deep FC chain keeps at most two intermediates alive, so the
        # planner must ping-pong between a bounded set of slots instead
        # of opening one per node.
        from repro.graph import GraphBuilder
        from repro.ops import FC

        b = GraphBuilder("deep")
        x = b.input("x", (4, 32))
        h = x
        for i in range(10):
            h = b.apply(FC(32, 32, f"fc{i}"), h)
        b.output(h)
        plan = plan_buffers(b.build())
        assert plan.slot_count <= 2
        assert plan.arena_bytes <= 2 * 4 * 32 * 4

    def test_working_set_stream_footprint(self):
        from repro.graph import working_set_stream

        graph = build_model("rm1").build_graph(8)
        stream = working_set_stream(graph)
        assert stream.footprint_bytes == plan_buffers(graph).peak_live_bytes
        assert not stream.is_write
