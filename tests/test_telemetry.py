"""Tests for the telemetry building blocks (repro.telemetry)."""

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import (
    MODELED_TID,
    MetricsRegistry,
    NoopTracer,
    Span,
    StreamingHistogram,
    Tracer,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry disabled and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


class TestStreamingHistogram:
    def test_exact_quantiles_match_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-7.0, sigma=1.2, size=1000)
        h = StreamingHistogram(exact_cap=2000)
        h.observe_many(values)
        assert h.is_exact
        for p in (0, 10, 50, 90, 95, 99, 100):
            assert h.quantile(p) == pytest.approx(
                np.percentile(values, p), rel=1e-12
            )

    def test_bucketed_quantiles_close_to_numpy(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(mean=-7.0, sigma=1.0, size=20000)
        h = StreamingHistogram(exact_cap=0, growth=1.05)
        h.observe_many(values)
        assert not h.is_exact
        for p in (50, 90, 95, 99):
            exact = np.percentile(values, p)
            # Log buckets bound relative error by the growth factor.
            assert h.quantile(p) == pytest.approx(exact, rel=0.05)

    def test_cap_overflow_switches_to_buckets(self):
        h = StreamingHistogram(exact_cap=10)
        h.observe_many([1.0] * 10)
        assert h.is_exact
        h.observe(1.0)
        assert not h.is_exact
        assert h.count == 11

    def test_stats_and_extremes(self):
        h = StreamingHistogram()
        h.observe_many([1e-12, 0.5, 2e5])  # under- and overflow included
        assert h.count == 3
        assert h.min == 1e-12
        assert h.max == 2e5
        assert h.mean == pytest.approx((1e-12 + 0.5 + 2e5) / 3)
        assert h.quantile(0) == 1e-12
        assert h.quantile(100) == 2e5

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            StreamingHistogram().quantile(50)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().observe(-1.0)

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.observe_many([0.001, 0.002])
        b.observe_many([0.004, 0.008])
        a.merge(b)
        assert a.count == 4
        assert a.max == 0.008
        assert a.quantile(50) == pytest.approx(
            np.percentile([0.001, 0.002, 0.004, 0.008], 50), rel=1e-12
        )

    def test_merge_mismatched_buckets_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.05).merge(StreamingHistogram(growth=1.2))

    def test_snapshot(self):
        h = StreamingHistogram()
        h.observe_many([0.001] * 10)
        snap = h.snapshot().as_dict()
        assert snap["count"] == 10
        assert snap["p50"] == pytest.approx(0.001)
        assert snap["mean"] == pytest.approx(0.001)


class TestMetricsRegistry:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", model="rm1")
        b = reg.counter("hits", model="rm1")
        c = reg.counter("hits", model="rm2")
        a.inc(2)
        b.inc(3)
        assert a is b and a is not c
        assert a.value == 5.0
        assert c.value == 0.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_tracks_min_max_mean(self):
        g = MetricsRegistry().gauge("depth")
        for v in (3, 9, 6):
            g.set(v)
        assert g.value == 6
        assert g.min == 3
        assert g.max == 9
        assert g.mean == pytest.approx(6.0)
        assert g.samples == 3

    def test_snapshot_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(4)
        reg.histogram("h").observe(0.5)
        snap = {r["name"]: r for r in reg.snapshot()}
        assert snap["a"]["value"] == 4.0
        assert snap["h"]["count"] == 1
        reg.reset()
        snap = {r["name"]: r for r in reg.snapshot()}
        assert snap["a"]["value"] == 0.0
        assert snap["h"]["count"] == 0

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", k="1").inc(1)
        b.counter("n", k="1").inc(2)
        b.counter("n", k="2").inc(5)
        b.histogram("lat").observe(0.25)
        a.merge(b)
        assert a.counter("n", k="1").value == 3.0
        assert a.counter("n", k="2").value == 5.0
        assert a.histogram("lat").count == 1

    def test_find_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.find("nope") is None
        assert len(reg) == 0

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000.0


class TestTracer:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer", category="test"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                pass
        spans = tracer.sorted_spans()
        assert [s.name for s in spans] == ["outer", "inner-1", "inner-2"]
        outer = spans[0]
        assert outer.depth == 0 and outer.parent_id is None
        for inner in spans[1:]:
            assert inner.depth == 1
            assert inner.parent_id == outer.span_id
            assert outer.start_s <= inner.start_s
            assert inner.end_s <= outer.end_s

    def test_span_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", category="c", fixed=1) as span:
            span.set(dynamic=2)
        recorded = tracer.spans()[0]
        assert recorded.attrs == {"fixed": 1, "dynamic": 2}
        assert recorded.category == "c"

    def test_add_span_manual_clock(self):
        tracer = Tracer()
        span = tracer.add_span("op", start_s=1.5, duration_s=0.25, category="FC")
        assert span.end_s == 1.75
        assert span.tid == MODELED_TID
        assert tracer.spans() == [span]

    def test_decorator(self):
        tracer = Tracer()

        @tracer.trace(category="fn")
        def answer():
            return 42

        assert answer() == 42
        assert tracer.spans()[0].category == "fn"
        assert "answer" in tracer.spans()[0].name

    def test_clear_resets_epoch(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        with tracer.span("b"):
            pass
        assert tracer.spans()[0].start_s >= 0.0

    def test_threaded_recording(self):
        tracer = Tracer()

        def work(i):
            with tracer.span(f"w{i}"):
                pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 16
        assert len({s.span_id for s in tracer.spans()}) == 16


class TestChromeTraceExport:
    def test_schema_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("op1", 0.0, 0.001, category="FC", seconds=0.001)
        tracer.add_span("op2", 0.001, 0.002, category="Relu")
        path = str(tmp_path / "t.trace.json")
        telemetry.write_chrome_trace(path, tracer.spans())

        doc = json.loads(open(path).read())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        for event in events:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event
        assert events[0]["dur"] == pytest.approx(1000.0)  # microseconds
        # load_chrome_trace validates the same invariants.
        assert telemetry.load_chrome_trace(path)["traceEvents"]

    def test_metrics_ride_along(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        path = str(tmp_path / "t.trace.json")
        telemetry.write_chrome_trace(path, [], metrics=reg.snapshot())
        doc = telemetry.load_chrome_trace(path)
        assert doc["otherData"]["metrics"][0]["value"] == 3.0

    def test_invalid_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "X", "name": "x"}]}))
        with pytest.raises(ValueError):
            telemetry.load_chrome_trace(str(path))


class TestGlobalState:
    def test_disabled_by_default_and_noop(self):
        assert not telemetry.enabled()
        tracer = telemetry.get_tracer()
        assert isinstance(tracer, NoopTracer)
        with tracer.span("x") as s:
            s.set(attr=1)
        tracer.add_span("y", 0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.spans() == []

    def test_noop_decorator_returns_function_unwrapped(self):
        def fn():
            return 1

        assert NoopTracer().trace()(fn) is fn

    def test_capture_enables_and_restores(self):
        assert not telemetry.enabled()
        with telemetry.capture() as (tracer, registry):
            assert telemetry.enabled()
            assert telemetry.get_tracer() is tracer
            with tracer.span("inside"):
                pass
            registry.counter("c").inc()
        assert not telemetry.enabled()
        # Data recorded under capture stays readable afterwards.
        assert len(tracer) == 1
        assert registry.counter("c").value == 1.0

    def test_capture_fresh_clears_previous_data(self):
        with telemetry.capture() as (tracer, _):
            with tracer.span("first"):
                pass
        with telemetry.capture() as (tracer, _):
            pass
        assert len(tracer) == 0

    def test_span_equality_for_noop_add(self):
        span = Span(name="n", category="c", start_s=0.0, end_s=1.0)
        assert span.duration_s == 1.0


class TestHistogramState:
    """Lossless serialize / merge surface added for the run ledger."""

    def test_round_trip_exact_regime(self):
        h = StreamingHistogram()
        h.observe_many([0.001, 0.004, 0.0002, 0.9])
        restored = StreamingHistogram.from_state(h.to_state())
        for q in (1, 25, 50, 75, 99):
            assert restored.quantile(q) == h.quantile(q)
        assert restored.count == h.count
        assert restored.mean == h.mean
        assert restored.min == h.min
        assert restored.max == h.max

    def test_round_trip_bucketed_regime(self):
        rng = np.random.default_rng(7)
        h = StreamingHistogram(exact_cap=16)
        h.observe_many(rng.lognormal(-6, 0.5, size=500))
        restored = StreamingHistogram.from_state(h.to_state())
        for q in (5, 50, 95, 99):
            assert restored.quantile(q) == h.quantile(q)
        assert restored.count == h.count
        assert restored.total == h.total

    def test_empty_round_trip(self):
        restored = StreamingHistogram.from_state(StreamingHistogram().to_state())
        assert restored.count == 0
        with pytest.raises(ValueError):
            restored.quantile(50)
        # And an empty restored histogram still accepts observations.
        restored.observe(0.001)
        assert restored.quantile(50) == pytest.approx(0.001)

    def test_state_is_json_serializable(self):
        h = StreamingHistogram()
        h.observe_many([0.001, 0.002])
        state = json.loads(json.dumps(h.to_state()))
        assert StreamingHistogram.from_state(state).quantile(50) == h.quantile(50)

    def test_observe_many_empty_is_noop(self):
        h = StreamingHistogram()
        h.observe_many([])
        h.observe_many(np.array([]))
        assert h.count == 0

    def test_version_mismatch_rejected(self):
        state = StreamingHistogram().to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            StreamingHistogram.from_state(state)

    def test_bad_bucket_index_rejected(self):
        h = StreamingHistogram(exact_cap=0)
        h.observe(0.001)
        state = h.to_state()
        state["counts"] = [[10**9, 1]]
        with pytest.raises(ValueError):
            StreamingHistogram.from_state(state)

    def test_merge_empty_preserves_exact_regime(self):
        a = StreamingHistogram()
        a.observe_many([0.001, 0.002, 0.003])
        empty = StreamingHistogram(exact_cap=0)  # exact list is None
        a.merge(empty)
        # Merging an empty shard must not degrade a to the bucket regime.
        assert a.quantile(50) == pytest.approx(0.002, rel=1e-12)
        assert a.count == 3

    def test_merge_matches_concatenated_stream(self):
        """Percentiles of a merge == percentiles of the combined stream."""
        rng = np.random.default_rng(2020)
        shards = [rng.lognormal(-6, 0.7, size=n) for n in (50, 200, 7)]
        merged = StreamingHistogram()
        for shard in shards:
            h = StreamingHistogram()
            h.observe_many(shard)
            merged.merge(StreamingHistogram.from_state(h.to_state()))
        combined = np.concatenate(shards)
        assert merged.count == combined.size
        for q in (1, 10, 50, 90, 99):
            assert merged.quantile(q) == pytest.approx(
                float(np.percentile(combined, q)), rel=1e-12
            )

    def test_merge_matches_concatenated_stream_bucketed(self):
        rng = np.random.default_rng(11)
        shards = [rng.lognormal(-6, 0.7, size=n) for n in (300, 500)]
        merged = StreamingHistogram(exact_cap=32)
        for shard in shards:
            h = StreamingHistogram(exact_cap=32)
            h.observe_many(shard)
            merged.merge(h)
        combined = np.concatenate(shards)
        one_pass = StreamingHistogram(exact_cap=32)
        one_pass.observe_many(combined)
        # Beyond the exact cap both sides land in identical buckets, so
        # the merge is indistinguishable from one pass over the stream.
        for q in (5, 50, 95, 99):
            assert merged.quantile(q) == one_pass.quantile(q)


class TestSnapshotOrdering:
    def test_snapshot_order_is_registration_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("zeta").inc(1)
        a.counter("alpha", labels={"k": "2"}).inc(2)
        a.counter("alpha", labels={"k": "1"}).inc(3)
        a.gauge("alpha").set(4)
        # Same metrics, reversed registration order.
        b.gauge("alpha").set(4)
        b.counter("alpha", labels={"k": "1"}).inc(3)
        b.counter("alpha", labels={"k": "2"}).inc(2)
        b.counter("zeta").inc(1)
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a == snap_b
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(
            snap_b, sort_keys=True
        )

    def test_snapshot_sorted_by_name_then_labels(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a", labels={"x": "2"}).inc()
        r.counter("a", labels={"x": "10"}).inc()
        names = [(m["name"], tuple(sorted(m["labels"].items())))
                 for m in r.snapshot()]
        assert names == sorted(names)
