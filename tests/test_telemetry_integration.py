"""Cross-stack telemetry integration: every layer records when enabled,
nothing records when disabled, and the exported trace agrees with the
profiles it came from (the Fig 6 correspondence)."""

import collections
import json

import numpy as np
import pytest

from repro import telemetry
from repro.models import build_model
from repro.runtime import (
    BatchingPolicy,
    InferenceSession,
    QueryScheduler,
    ScheduleResult,
    ServiceTimeModel,
    profile_spans,
    timeline_from_profile,
)
from repro.telemetry import MODELED_TID


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _scheduler_for(session, batch):
    profiles = [session.profile(b) for b in (1, max(2, batch // 4), batch)]
    return QueryScheduler(
        ServiceTimeModel.from_profiles(profiles),
        BatchingPolicy(max_batch=batch),
    )


class TestProfileSpans:
    def test_per_kind_span_sums_match_profile(self):
        """Acceptance: trace span durations reproduce op_time_by_kind."""
        session = InferenceSession(build_model("dlrm_rm2"), "cascade-lake")
        with telemetry.capture() as (tracer, _):
            profile = session.profile(64)
        sums = collections.defaultdict(float)
        for span in tracer.spans():
            if span.tid == MODELED_TID and span.category != "DataComm":
                sums[span.category] += span.duration_s
        assert set(sums) == set(profile.op_time_by_kind)
        for kind, expected in profile.op_time_by_kind.items():
            assert abs(sums[kind] - expected) < 1e-9

    def test_spans_serial_and_after_data_comm(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        profile = session.profile(16)
        spans = profile_spans(profile)
        assert spans[0].start_s == pytest.approx(profile.data_comm_seconds)
        for prev, cur in zip(spans, spans[1:]):
            assert cur.start_s == pytest.approx(prev.end_s)

    def test_timeline_is_view_over_spans(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        profile = session.profile(16)
        timeline = timeline_from_profile(profile)
        for view in timeline.spans:
            assert view.name == view.span.name
            assert view.op_kind == view.span.category
            assert view.duration_seconds == view.span.duration_s

    def test_gpu_profile_spans_recorded(self):
        session = InferenceSession(build_model("wnd"), "t4")
        with telemetry.capture() as (tracer, registry):
            session.profile(256)
        modeled = [s for s in tracer.spans() if s.tid == MODELED_TID]
        assert any(s.category == "DataComm" for s in modeled)
        assert any(s.category == "FC" for s in modeled)
        names = {r["name"] for r in registry.snapshot()}
        assert "gpusim.kernel_launches" in names


class TestSessionMetrics:
    def test_pmu_counters_labeled(self):
        session = InferenceSession(build_model("rm2"), "broadwell")
        with telemetry.capture() as (_, registry):
            profile = session.profile(16)
        cycles = registry.find(
            "pmu.cycles", model="rm2", platform=session.platform.name
        )
        assert cycles is not None
        assert cycles.value == pytest.approx(profile.events.cycles)

    def test_per_kind_histograms(self):
        session = InferenceSession(build_model("rm2"), "broadwell")
        with telemetry.capture() as (_, registry):
            profile = session.profile(16)
        for kind, seconds in profile.op_time_by_kind.items():
            h = registry.find(
                "session.op_seconds",
                kind=kind,
                model="rm2",
                platform=session.platform.name,
            )
            assert h is not None
            assert h.total == pytest.approx(seconds)

    def test_uarch_counters(self):
        session = InferenceSession(build_model("ncf"), "cascade_lake")
        with telemetry.capture() as (_, registry):
            session.profile(8)
        names = {r["name"] for r in registry.snapshot()}
        assert {"uarch.graphs_profiled", "uarch.cycles",
                "uarch.instructions"} <= names


class TestExecutorTelemetry:
    def test_run_records_spans_and_bytes_freed(self):
        session = InferenceSession(build_model("ncf"), "broadwell")
        with telemetry.capture() as (tracer, registry):
            session.run_generated(4)
        executor_spans = [s for s in tracer.spans() if s.category == "executor"]
        graph = session.graph(4)
        assert len(executor_spans) == len(graph)
        gauge = registry.find("executor.bytes_freed", graph=graph.name)
        assert gauge is not None and gauge.value > 0
        nodes = registry.find("executor.nodes_executed", graph=graph.name)
        assert nodes.value == len(graph)

    def test_run_span_wraps_executor_spans(self):
        session = InferenceSession(build_model("ncf"), "broadwell")
        with telemetry.capture() as (tracer, _):
            session.run_generated(4)
        spans = tracer.sorted_spans()
        run_span = next(s for s in spans if s.name == "session.run")
        for span in spans:
            if span.category == "executor":
                assert span.parent_id is not None
                assert run_span.start_s <= span.start_s <= run_span.end_s


class TestSchedulerTelemetry:
    def test_queue_depth_occupancy_latency_in_snapshot(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        scheduler = _scheduler_for(session, 32)
        with telemetry.capture() as (_, registry):
            result = scheduler.run(2000.0, num_queries=400)
        snap = {r["name"]: r for r in registry.snapshot()}
        assert snap["scheduler.queue_depth"]["samples"] > 0
        assert snap["scheduler.queue_depth"]["max"] >= 1
        occ = snap["scheduler.batch_occupancy"]
        assert occ["count"] == len(result.batch_sizes)
        assert occ["mean"] == pytest.approx(result.mean_batch_size)
        lat = snap["scheduler.query_latency_s"]
        assert lat["count"] == result.queries
        assert lat["sum"] == pytest.approx(float(np.sum(result.latencies_s)))

    def test_latency_histogram_percentiles_close_to_exact(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        scheduler = _scheduler_for(session, 32)
        with telemetry.capture() as (_, registry):
            result = scheduler.run(2000.0, num_queries=800)
        h = registry.find(
            "scheduler.query_latency_s", model="rm1",
            platform=session.platform.name,
        )
        assert not h.is_exact  # streaming, no raw list retained
        for p in (50, 95, 99):
            assert h.quantile(p) == pytest.approx(result.percentile(p), rel=0.06)

    def test_empty_schedule_percentile_raises_clearly(self):
        result = ScheduleResult(
            queries=0,
            duration_s=0.0,
            latencies_s=np.empty(0),
            batch_sizes=[],
        )
        with pytest.raises(ValueError, match="no latencies"):
            result.percentile(99)
        with pytest.raises(ValueError, match="no latencies"):
            result.p99

    def test_service_time_model_from_profiles(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        profiles = [session.profile(b) for b in (1, 8, 32)]
        stm = ServiceTimeModel.from_profiles(profiles)
        assert stm.model == "rm1"
        assert stm.seconds(8) == pytest.approx(profiles[1].total_seconds)
        # Interpolation between profiled points stays monotone here.
        assert stm.seconds(1) < stm.seconds(16) < stm.seconds(32)

    def test_from_profiles_needs_two_batches(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        with pytest.raises(ValueError):
            ServiceTimeModel.from_profiles([session.profile(8)])


class TestDisabledIsNoop:
    def test_nothing_recorded_when_disabled(self):
        session = InferenceSession(build_model("rm1"), "broadwell")
        session.profile(16)
        session.run_generated(4)
        _scheduler_for(session, 16).run(2000.0, num_queries=100)
        assert len(telemetry.get_registry()) == 0
        assert len(telemetry.get_tracer()) == 0

    def test_profile_results_identical_with_and_without(self):
        session = InferenceSession(build_model("rm2"), "broadwell")
        baseline = session.profile(16)
        with telemetry.capture():
            instrumented = session.profile(16)
        assert instrumented.op_time_by_kind == baseline.op_time_by_kind
        assert instrumented.total_seconds == baseline.total_seconds


class TestTimelineRenderRegression:
    def test_subpixel_span_at_tail_still_draws(self):
        """A tiny span ending exactly at the timeline tail must render
        a >= 1 character bar inside the track (regression: bar could
        clamp to 0 or negative at offset == width)."""
        session = InferenceSession(build_model("rm1"), "broadwell")
        timeline = timeline_from_profile(session.profile(16))
        width = 10  # coarse grid forces sub-pixel spans at the tail
        lines = timeline.render(width=width).splitlines()[1:]
        for line in lines:
            bar_field = line.split("|")[1]
            assert len(bar_field) == width
            assert "#" in bar_field
