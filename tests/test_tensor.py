"""Tests for repro.graph.tensor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import TensorSpec


class TestTensorSpec:
    def test_num_elements(self):
        assert TensorSpec((4, 8, 2)).num_elements == 64

    def test_scalar_shape(self):
        spec = TensorSpec(())
        assert spec.num_elements == 1
        assert spec.rank == 0

    def test_nbytes_float32(self):
        assert TensorSpec((10, 10), "float32").nbytes == 400

    def test_nbytes_int64(self):
        assert TensorSpec((10,), "int64").nbytes == 80

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((4, -1))

    def test_zero_dimension_allowed(self):
        assert TensorSpec((0, 5)).num_elements == 0

    def test_with_shape_preserves_dtype(self):
        spec = TensorSpec((2, 3), "int64").with_shape((6,))
        assert spec.shape == (6,)
        assert spec.dtype == "int64"

    def test_like_array(self):
        arr = np.zeros((3, 4), dtype=np.float32)
        spec = TensorSpec.like(arr)
        assert spec.shape == (3, 4)
        assert spec.dtype == "float32"
        assert spec.matches(arr)

    def test_matches_rejects_wrong_shape(self):
        spec = TensorSpec((3, 4))
        assert not spec.matches(np.zeros((4, 3), dtype=np.float32))

    def test_matches_rejects_wrong_dtype(self):
        spec = TensorSpec((3,), "float32")
        assert not spec.matches(np.zeros(3, dtype=np.float64))

    def test_specs_hashable_and_equal(self):
        assert TensorSpec((2, 2)) == TensorSpec((2, 2))
        assert len({TensorSpec((2, 2)), TensorSpec((2, 2))}) == 1

    @given(st.lists(st.integers(min_value=0, max_value=64), max_size=4))
    def test_num_elements_is_product(self, dims):
        spec = TensorSpec(tuple(dims))
        expected = 1
        for d in dims:
            expected *= d
        assert spec.num_elements == expected
        assert spec.nbytes == expected * 4
