"""Tests for execution timelines."""

import pytest

from repro.models import build_model
from repro.runtime import InferenceSession, timeline_from_profile


@pytest.fixture(scope="module")
def cpu_timeline():
    session = InferenceSession(build_model("rm1"), "broadwell")
    return timeline_from_profile(session.profile(16))


@pytest.fixture(scope="module")
def gpu_timeline():
    session = InferenceSession(build_model("rm1"), "t4")
    return timeline_from_profile(session.profile(256))


class TestTimeline:
    def test_spans_cover_all_ops(self, cpu_timeline):
        graph = build_model("rm1").build_graph(16)
        assert len(cpu_timeline.spans) == len(graph)

    def test_spans_contiguous_and_ordered(self, cpu_timeline):
        spans = cpu_timeline.spans
        assert spans[0].start_seconds == pytest.approx(
            cpu_timeline.data_comm_seconds
        )
        for prev, cur in zip(spans, spans[1:]):
            assert cur.start_seconds == pytest.approx(prev.end_seconds)
            assert cur.duration_seconds > 0

    def test_total_matches_profile(self, cpu_timeline):
        session = InferenceSession(build_model("rm1"), "broadwell")
        profile = session.profile(16)
        assert cpu_timeline.total_seconds == pytest.approx(
            profile.total_seconds, rel=1e-6
        )

    def test_gpu_timeline_works(self, gpu_timeline):
        assert gpu_timeline.platform == "T4"
        assert gpu_timeline.data_comm_seconds > 0
        assert len(gpu_timeline.spans) > 0

    def test_slowest_sorted(self, cpu_timeline):
        slowest = cpu_timeline.slowest(3)
        durations = [s.duration_seconds for s in slowest]
        assert durations == sorted(durations, reverse=True)
        # RM1's heavy hitters: the per-table gathers or the big FCs.
        assert slowest[0].op_kind in ("SparseLengthsSum", "FC")

    def test_render_contains_all_rows(self, cpu_timeline):
        text = cpu_timeline.render(width=40)
        assert "timeline: rm1" in text
        assert text.count("\n") >= len(cpu_timeline.spans)
        assert "#" in text

    def test_render_bars_within_width(self, cpu_timeline):
        width = 30
        for line in cpu_timeline.render(width=width).splitlines()[1:]:
            bar_field = line.split("|")[1]
            assert len(bar_field) == width
