"""Tests for the windowed time-series telemetry layer.

Covers window bucketing (point, vectorized, and interval recording),
the four track types, ring eviction, the lossless and compact
serializations, Perfetto counter export, and — the merge contract the
at-scale story depends on — property tests that merging randomly
window-split shards reproduces the single-series result exactly,
including the histograms' exact-regime state (an empty window is a
strict no-op, never an exactness downgrade).
"""

import json

import numpy as np
import pytest

from repro.telemetry import TimeSeries, TimeSeriesSummary
from repro.telemetry.chrome_trace import (
    COUNTER_PID,
    timeseries_to_counter_events,
)


def _filled_series(seed: int = 7, window_s: float = 0.5) -> TimeSeries:
    """A small series exercising every track type."""
    rng = np.random.default_rng(seed)
    ts = TimeSeries(window_s=window_s)
    times = rng.uniform(0.0, 6.0, size=200)
    ts.count_many("arrivals", times)
    lat = rng.exponential(0.004, size=200)
    ts.observe_many("latency_s", times, lat)
    for t in times[::10]:
        ts.sample("queue_depth", t, float(rng.integers(0, 50)))
        ts.mark_state("replica.health", t, "healthy")
    ts.count_interval("busy_s", 1.2, 3.7)
    ts.mark_state_interval("replica.health", 4.0, 5.2, "degraded")
    ts.count("faults.slowdown", 2.6)
    return ts


class TestWindowing:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window_s=0.0)
        with pytest.raises(ValueError):
            TimeSeries(window_s=float("nan"))
        with pytest.raises(ValueError):
            TimeSeries(window_s=1.0, max_windows=0)

    def test_window_index_floor_and_clamp(self):
        ts = TimeSeries(window_s=0.25, origin_s=1.0)
        assert ts.window_index(1.0) == 0
        assert ts.window_index(1.249) == 0
        assert ts.window_index(1.25) == 1
        assert ts.window_index(0.0) == 0  # clamped below origin
        assert ts.window_bounds(2) == (1.5, 1.75)

    def test_count_many_matches_looped_count(self):
        rng = np.random.default_rng(3)
        times = rng.uniform(0.0, 10.0, size=500)
        a = TimeSeries(window_s=0.3)
        a.count_many("n", times)
        b = TimeSeries(window_s=0.3)
        for t in times:
            b.count("n", t)
        assert a.to_state() == b.to_state()

    def test_observe_many_matches_looped_observe(self):
        rng = np.random.default_rng(4)
        times = rng.uniform(0.0, 5.0, size=300)
        values = rng.exponential(0.01, size=300)
        a = TimeSeries(window_s=0.5)
        a.observe_many("v", times, values)
        b = TimeSeries(window_s=0.5)
        for t, v in zip(times, values):
            b.observe("v", t, v)
        sa, sb = a.summary(), b.summary()
        assert sa.window_indices() == sb.window_indices()
        for i in sa.window_indices():
            ha, hb = sa.histogram_summary("v", i), sb.histogram_summary("v", i)
            if hb is None:
                assert ha is None
                continue
            assert ha["count"] == hb["count"]
            # Vectorized summation can differ from the loop by one ULP.
            assert ha["sum"] == pytest.approx(hb["sum"])
            for key in ("p50", "p95", "p99"):
                assert ha[key] == hb[key]

    def test_observe_many_misaligned_rejected(self):
        ts = TimeSeries(window_s=1.0)
        with pytest.raises(ValueError, match="align"):
            ts.observe_many("v", [0.1, 0.2], [1.0])

    def test_count_interval_integrates_to_duration(self):
        # A busy period spanning several windows must contribute its
        # exact per-window overlap: the track integrates to the true
        # busy seconds and each cell stays <= window_s (rho <= 1).
        ts = TimeSeries(window_s=0.5)
        ts.count_interval("busy_s", 0.7, 2.9)
        total = sum(
            ts.counter_value("busy_s", i) for i in ts.window_indices()
        )
        assert total == pytest.approx(2.2)
        assert ts.counter_value("busy_s", 1) == pytest.approx(0.3)
        assert ts.counter_value("busy_s", 2) == pytest.approx(0.5)
        assert ts.counter_value("busy_s", 5) == pytest.approx(0.4)
        assert ts.summary().utilization(2) == pytest.approx(1.0)

    def test_count_interval_empty_is_noop(self):
        ts = TimeSeries(window_s=0.5)
        ts.count_interval("busy_s", 1.0, 1.0)
        assert ts.window_indices() == []

    def test_track_kind_conflict_rejected(self):
        ts = TimeSeries(window_s=1.0)
        ts.count("x", 0.1)
        with pytest.raises(ValueError, match="counter track"):
            ts.sample("x", 0.2, 1.0)

    def test_ring_eviction_keeps_trailing_windows(self):
        ts = TimeSeries(window_s=1.0, max_windows=4)
        for t in range(10):
            ts.count("n", t + 0.5)
        assert ts.window_indices() == [6, 7, 8, 9]
        assert ts.evicted_windows == 6
        assert ts.summary().evicted_windows == 6


class TestStateTracks:
    def test_health_timeline_accumulates(self):
        ts = _filled_series()
        s = ts.summary()
        degraded = [
            i for i in s.window_indices()
            if "degraded" in s.states("replica.health", i)
        ]
        # mark_state_interval(4.0, 5.2) at 0.5 s windows -> windows 8-10.
        assert degraded == [8, 9, 10]

    def test_fault_tracks_by_prefix(self):
        s = _filled_series().summary()
        assert s.fault_tracks() == ["faults.slowdown"]
        assert s.fault_activity(5) == 1.0  # the count at 2.6 s / 0.5 s windows
        assert s.fault_activity(0) == 0.0


class TestSerialization:
    def test_state_roundtrip_is_lossless(self):
        ts = _filled_series()
        state = json.loads(json.dumps(ts.to_state()))
        back = TimeSeries.from_state(state)
        assert back.to_state() == ts.to_state()
        assert back.summary().rows == ts.summary().rows

    def test_state_version_checked(self):
        state = _filled_series().to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            TimeSeries.from_state(state)
        with pytest.raises(ValueError, match="version"):
            TimeSeriesSummary.from_compact_state({"version": 99})

    def test_compact_state_roundtrips_to_summary(self):
        ts = _filled_series()
        compact = json.loads(json.dumps(ts.compact_state()))
        summary = TimeSeriesSummary.from_compact_state(compact)
        live = ts.summary()
        assert summary.window_indices() == live.window_indices()
        for i in live.window_indices():
            assert summary.counter("arrivals", i) == live.counter("arrivals", i)
            assert summary.gauge("queue_depth", i) == live.gauge("queue_depth", i)
            assert summary.states("replica.health", i) == live.states(
                "replica.health", i
            )
            lat_live = live.histogram_summary("latency_s", i)
            lat_back = summary.histogram_summary("latency_s", i)
            if lat_live is None:
                assert lat_back is None
            else:
                for key in ("count", "sum", "p50", "p95", "p99"):
                    assert lat_back[key] == pytest.approx(lat_live[key])

    def test_compact_state_is_byte_stable(self):
        a = json.dumps(_filled_series().compact_state(), sort_keys=True)
        b = json.dumps(_filled_series().compact_state(), sort_keys=True)
        assert a == b


class TestMerge:
    def test_mismatched_windowing_rejected(self):
        with pytest.raises(ValueError, match="windowing"):
            TimeSeries(window_s=1.0).merge(TimeSeries(window_s=0.5))
        with pytest.raises(ValueError, match="windowing"):
            TimeSeries(window_s=1.0).merge(
                TimeSeries(window_s=1.0, origin_s=5.0)
            )

    def test_merge_empty_series_is_exact_noop(self):
        # The empty-shard merge must not touch any state — in
        # particular it must not tip exact-regime histograms into
        # bucket interpolation.
        ts = _filled_series()
        before = ts.to_state()
        ts.merge(TimeSeries(window_s=ts.window_s))
        assert ts.to_state() == before
        for i in ts.window_indices():
            hist = ts.window_histogram("latency_s", i)
            if hist is not None:
                assert hist.is_exact

    def test_merge_into_empty_adopts_full_state(self):
        ts = _filled_series()
        empty = TimeSeries(window_s=ts.window_s)
        empty.merge(ts)
        assert empty.to_state() == ts.to_state()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_window_split_shards_merge_to_single_series(self, seed):
        # Property: split a run's events by window across two shards
        # (each window's events land wholly on one shard — the per-
        # replica sharding the engine produces), merge, and the result
        # is state-identical to recording everything into one series.
        rng = np.random.default_rng(seed)
        window_s = 0.4
        times = rng.uniform(0.0, 8.0, size=400)
        values = rng.exponential(0.005, size=400)
        whole = TimeSeries(window_s=window_s)
        shards = [TimeSeries(window_s=window_s) for _ in range(2)]
        owner = {}
        for t, v in zip(times, values):
            index = whole.window_index(t)
            shard = shards[owner.setdefault(index, int(rng.integers(0, 2)))]
            for dest in (whole, shard):
                dest.count("arrivals", t)
                dest.observe("latency_s", t, v)
                dest.sample("queue_depth", t, v * 1e3)
                dest.mark_state("health", t, "healthy")
        merged = shards[0].merge(shards[1])
        assert merged.to_state() == whole.to_state()
        # Exactness preserved: no shard window crossed the exact cap.
        for i in whole.window_indices():
            a = merged.window_histogram("latency_s", i)
            b = whole.window_histogram("latency_s", i)
            if b is not None:
                assert a.is_exact == b.is_exact

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_value_split_counters_and_gauges_merge_exactly(self, seed):
        # Counters and gauges are plain additive cells, so even a
        # value-level split (both shards contribute to the same
        # window) must merge to the single-series state.
        rng = np.random.default_rng(seed)
        times = rng.uniform(0.0, 5.0, size=300)
        whole = TimeSeries(window_s=0.25)
        shards = [TimeSeries(window_s=0.25) for _ in range(3)]
        for k, t in enumerate(times):
            shard = shards[int(rng.integers(0, 3))]
            for dest in (whole, shard):
                dest.count("n", t)
                dest.count_interval("busy_s", t, t + 0.01)
                dest.sample("depth", t, float(k % 17))
                dest.mark_state("health", t, "a" if k % 3 else "b")
        merged = shards[0].merge(shards[1]).merge(shards[2])
        sm, sw = merged.summary(), whole.summary()
        assert sm.window_indices() == sw.window_indices()
        for i in sw.window_indices():
            assert sm.counter("n", i) == sw.counter("n", i)
            assert sm.counter("busy_s", i) == pytest.approx(
                sw.counter("busy_s", i)
            )
            assert sm.states("health", i) == sw.states("health", i)
            gm, gw = sm.gauge("depth", i), sw.gauge("depth", i)
            if gw is None:
                assert gm is None
            else:
                assert gm["count"] == gw["count"]
                assert gm["mean"] == pytest.approx(gw["mean"])
                assert gm["min"] == gw["min"]
                assert gm["max"] == gw["max"]


class TestCounterExport:
    def test_counter_events_shapes(self):
        ts = _filled_series()
        events = timeseries_to_counter_events(ts)
        assert events, "expected counter events"
        for e in events:
            assert e["ph"] == "C"
            assert e["pid"] == COUNTER_PID
            assert set(e) >= {"name", "ts", "args"}
        names = {e["name"] for e in events}
        assert {"arrivals", "busy_s", "faults.slowdown"} <= names
        # Histogram tracks export multi-series percentile args.
        lat = [e for e in events if e["name"] == "latency_s"]
        assert lat and set(lat[0]["args"]) == {"p50", "p95", "p99"}
        # State tracks have no numeric counter representation.
        assert "replica.health" not in names

    def test_track_filter(self):
        ts = _filled_series()
        events = timeseries_to_counter_events(ts, tracks=["arrivals"])
        assert {e["name"] for e in events} == {"arrivals"}

    def test_summary_and_live_exports_match(self):
        ts = _filled_series()
        assert timeseries_to_counter_events(ts) == timeseries_to_counter_events(
            ts.summary()
        )
