"""Tests for TopDown slot accounting and the integrated pipeline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import BROADWELL, CASCADE_LAKE
from repro.models import build_model
from repro.uarch import CpuModel, PmuEvents, topdown_from_events


class TestTopDownAccounting:
    def _events(self, **kwargs):
        defaults = dict(cycles=1000.0, uops_retired=2000.0, instructions=1900.0)
        defaults.update(kwargs)
        return PmuEvents(**defaults)

    def test_level1_sums_to_one(self):
        td = topdown_from_events(self._events())
        td.validate()

    def test_pure_retirement(self):
        td = topdown_from_events(self._events(cycles=100, uops_retired=400))
        assert td.retiring == pytest.approx(1.0)
        assert td.backend_bound == pytest.approx(0.0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            topdown_from_events(PmuEvents())

    def test_residual_charged_to_backend(self):
        td = topdown_from_events(self._events(cycles=1000, uops_retired=1000))
        assert td.backend_bound > 0.5

    def test_oversubscription_normalized(self):
        events = self._events(
            cycles=100,
            uops_retired=400,
            bad_speculation_cycles=100,
            frontend_latency_cycles=100,
            core_bound_cycles=100,
        )
        td = topdown_from_events(events)
        td.validate()

    def test_level2_splits_match_parents(self):
        events = self._events(
            frontend_latency_cycles=30,
            frontend_bandwidth_cycles=70,
            core_bound_cycles=40,
            memory_bound_cycles=60,
        )
        td = topdown_from_events(events)
        assert td.frontend_latency + td.frontend_bandwidth == pytest.approx(
            td.frontend_bound
        )
        assert td.core_bound + td.memory_bound == pytest.approx(td.backend_bound)
        assert td.frontend_latency / td.frontend_bound == pytest.approx(0.3)

    def test_core_to_memory_ratio(self):
        events = self._events(core_bound_cycles=100, memory_bound_cycles=50)
        assert topdown_from_events(events).core_to_memory_ratio == pytest.approx(2.0)

    def test_ratio_infinite_without_memory(self):
        events = self._events(core_bound_cycles=100)
        assert topdown_from_events(events).core_to_memory_ratio == float("inf")

    @given(
        cycles=st.floats(min_value=1.0, max_value=1e9),
        uops=st.floats(min_value=0.0, max_value=1e9),
        bs=st.floats(min_value=0.0, max_value=1e8),
        fe=st.floats(min_value=0.0, max_value=1e8),
        be=st.floats(min_value=0.0, max_value=1e8),
    )
    def test_simplex_property(self, cycles, uops, bs, fe, be):
        events = PmuEvents(
            cycles=cycles,
            uops_retired=uops,
            bad_speculation_cycles=bs,
            frontend_latency_cycles=fe,
            core_bound_cycles=be,
        )
        td = topdown_from_events(events)
        td.validate()
        for value in td.level1.values():
            assert -1e-9 <= value <= 1.0 + 1e-9


class TestCpuModelIntegration:
    @pytest.fixture(scope="class")
    def rm1_profile(self):
        return CpuModel(BROADWELL).profile_graph(build_model("rm1").build_graph(16))

    def test_events_aggregate_over_ops(self, rm1_profile):
        assert rm1_profile.events.cycles == pytest.approx(
            sum(p.cycles for p in rm1_profile.op_profiles)
        )
        assert rm1_profile.events.instructions == pytest.approx(
            sum(p.events.instructions for p in rm1_profile.op_profiles)
        )

    def test_compute_time_positive_and_finite(self, rm1_profile):
        assert 0 < rm1_profile.compute_seconds < 10

    def test_time_by_kind_sums_to_compute(self, rm1_profile):
        assert sum(rm1_profile.time_by_kind().values()) == pytest.approx(
            rm1_profile.compute_seconds
        )

    def test_cycles_are_additive_stall_model(self, rm1_profile):
        for p in rm1_profile.op_profiles:
            assert p.cycles == pytest.approx(
                p.execution_cycles
                + p.memory_stall_cycles
                + p.frontend_stall_cycles
                + p.bad_speculation_cycles
            )

    def test_batch_scaling_monotonic(self):
        model = build_model("rm1")
        cpu = CpuModel(BROADWELL)
        times = [
            cpu.profile_graph(model.build_graph(b)).compute_seconds
            for b in (1, 16, 256)
        ]
        assert times[0] < times[1] < times[2]

    def test_input_bytes_add_data_load_time(self):
        model = build_model("rm1")
        g = model.build_graph(16)
        cpu = CpuModel(BROADWELL)
        small = cpu.profile_graph(g, input_bytes=0)
        big = cpu.profile_graph(g, input_bytes=1 << 30)
        assert big.data_load_seconds > small.data_load_seconds
        assert big.compute_seconds == pytest.approx(small.compute_seconds)

    def test_constants_override_changes_results(self):
        from repro.uarch import DEFAULT_CONSTANTS

        model = build_model("rm3")
        g = model.build_graph(16)
        base = CpuModel(BROADWELL).profile_graph(g).compute_seconds
        slow = CpuModel(
            BROADWELL,
            DEFAULT_CONSTANTS.with_overrides(fma_port_efficiency=0.3),
        ).profile_graph(g).compute_seconds
        assert slow > base
