"""Tests for diurnal load traces and scheduler replay."""

import numpy as np
import pytest

from repro.core import SpeedupStudy
from repro.models import build_model
from repro.runtime import BatchingPolicy, QueryScheduler, ServiceTimeModel
from repro.workloads import DiurnalTrace, replay


@pytest.fixture(scope="module")
def scheduler():
    sweep = SpeedupStudy(
        models={"rm3": build_model("rm3")}, batch_sizes=[1, 16, 256, 4096]
    ).run()
    return QueryScheduler(
        ServiceTimeModel(sweep, "rm3", "t4"),
        BatchingPolicy(max_batch=256, batch_timeout_s=0.002),
    )


class TestDiurnalTrace:
    def test_interval_count_and_bounds(self):
        trace = DiurnalTrace(trough_qps=100, peak_qps=1000, noise_sigma=0.0)
        intervals = trace.intervals()
        assert len(intervals) == 24
        rates = [i.arrival_qps for i in intervals]
        assert min(rates) == pytest.approx(100, rel=0.05)
        assert max(rates) == pytest.approx(1000, rel=0.05)

    def test_peak_at_peak_hour(self):
        trace = DiurnalTrace(
            trough_qps=10, peak_qps=100, peak_hour=19.0, noise_sigma=0.0
        )
        intervals = trace.intervals()
        peak = max(intervals, key=lambda i: i.arrival_qps)
        assert peak.hour == pytest.approx(19.0)

    def test_noise_reproducible(self):
        a = DiurnalTrace(seed=5).intervals()
        b = DiurnalTrace(seed=5).intervals()
        assert [i.arrival_qps for i in a] == [i.arrival_qps for i in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(trough_qps=0)
        with pytest.raises(ValueError):
            DiurnalTrace(trough_qps=100, peak_qps=50)
        with pytest.raises(ValueError):
            DiurnalTrace(intervals_per_day=0)

    def test_daily_queries_positive(self):
        assert DiurnalTrace().daily_queries > 0


class TestReplay:
    def test_replay_covers_all_intervals(self, scheduler):
        trace = DiurnalTrace(
            trough_qps=500, peak_qps=5_000, intervals_per_day=6, noise_sigma=0.0
        )
        result = replay(scheduler, trace, queries_per_interval=200)
        assert len(result.results) == 6
        assert result.worst_p99 > 0

    def test_peak_hour_has_worst_latency(self, scheduler):
        trace = DiurnalTrace(
            trough_qps=1_000, peak_qps=60_000, intervals_per_day=8,
            noise_sigma=0.0,
        )
        result = replay(scheduler, trace, queries_per_interval=400)
        rates = [i.arrival_qps for i in result.intervals]
        p99s = [r.p99 for r in result.results]
        assert p99s.index(max(p99s)) == rates.index(max(rates))

    def test_sla_violation_count(self, scheduler):
        trace = DiurnalTrace(
            trough_qps=500, peak_qps=2_000, intervals_per_day=4, noise_sigma=0.0
        )
        result = replay(scheduler, trace, queries_per_interval=200)
        assert result.sla_violations(1e-9) == 4  # impossible SLA
        assert result.sla_violations(60.0) == 0  # trivial SLA
