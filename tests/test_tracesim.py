"""Tests for the trace-driven embedding-locality substrate."""

import pytest

from repro.hw import BROADWELL, CASCADE_LAKE
from repro.uarch.tracesim import EmbeddingTraceStudy
from repro.workloads import UniformIndices, ZipfIndices


@pytest.fixture(scope="module")
def study():
    # Scaled-down capacities keep traces fast while preserving ratios.
    return EmbeddingTraceStudy(BROADWELL, capacity_scale=1 / 64, seed=1)


class TestTraceStudy:
    def test_counts_conserve_lookups(self, study):
        result = study.run(rows=50_000, row_bytes=128, lookups=2000)
        assert sum(result.served.values()) == 2000
        assert 0.0 <= result.dram_rate <= 1.0

    def test_tiny_table_cache_resident(self, study):
        result = study.run(
            rows=200, row_bytes=128, lookups=2000, warmup_lookups=1000
        )
        assert result.dram_rate < 0.05

    def test_huge_table_mostly_dram(self, study):
        result = study.run(
            rows=5_000_000, row_bytes=128, lookups=2000, warmup_lookups=1000
        )
        assert result.dram_rate > 0.5

    def test_dram_rate_monotonic_in_table_size(self, study):
        results = study.sweep_table_sizes(
            [1_000, 50_000, 5_000_000], lookups=2000, warmup_lookups=2000
        )
        rates = [r.dram_rate for r in results]
        assert rates[0] < rates[-1]

    def test_zipf_beats_uniform(self):
        zipf = EmbeddingTraceStudy(
            BROADWELL, ZipfIndices(alpha=1.2), capacity_scale=1 / 64, seed=2
        )
        uniform = EmbeddingTraceStudy(
            BROADWELL, UniformIndices(), capacity_scale=1 / 64, seed=2
        )
        z = zipf.run(2_000_000, 128, 3000, warmup_lookups=3000)
        u = uniform.run(2_000_000, 128, 3000, warmup_lookups=3000)
        assert z.dram_rate < u.dram_rate

    def test_invalid_args(self, study):
        with pytest.raises(ValueError):
            study.run(0, 128, 100)
        with pytest.raises(ValueError):
            EmbeddingTraceStudy(BROADWELL, capacity_scale=0)

    def test_fraction_accessor(self, study):
        result = study.run(10_000, 128, 1000)
        total = sum(result.fraction(l) for l in ("l1", "l2", "l3", "dram"))
        assert total == pytest.approx(1.0)


class TestAnalyticalCrossValidation:
    """The closed-form model must order configurations like the traces."""

    def test_prediction_is_distribution(self):
        study = EmbeddingTraceStudy(BROADWELL)
        pred = study.analytical_prediction(1_000_000, 128, 4000)
        assert sum(pred.values()) == pytest.approx(1.0)

    def test_ordering_agreement_across_table_sizes(self):
        study = EmbeddingTraceStudy(BROADWELL, capacity_scale=1 / 64, seed=3)
        sizes = [2_000, 200_000, 8_000_000]
        traced = [
            study.run(s, 128, 2500, warmup_lookups=2500).dram_rate for s in sizes
        ]
        predicted = [
            study.analytical_prediction(s, 128, 2500)["dram"] for s in sizes
        ]
        assert traced == sorted(traced)
        assert predicted == sorted(predicted)

    def test_magnitude_agreement_for_llc_overflow(self):
        """For a table ~64x the LLC, trace and closed form should agree
        DRAM serves the majority of lookups."""
        study = EmbeddingTraceStudy(BROADWELL, capacity_scale=1 / 64, seed=4)
        rows = 20_000_000  # 2.4 GB nominal at 128 B rows
        traced = study.run(rows, 128, 2500, warmup_lookups=2500).dram_rate
        predicted = study.analytical_prediction(rows, 128, 2500)["dram"]
        assert traced > 0.5 and predicted > 0.5
        assert abs(traced - predicted) < 0.35

    def test_exclusive_hierarchy_also_works(self):
        study = EmbeddingTraceStudy(CASCADE_LAKE, capacity_scale=1 / 64, seed=5)
        result = study.run(1_000_000, 128, 1500, warmup_lookups=1500)
        assert sum(result.served.values()) == 1500
