"""Tests for the CPU microarchitecture component models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import BROADWELL, CASCADE_LAKE
from repro.ops.workload import MemoryStream, OpWorkload, RANDOM, SEQUENTIAL
from repro.uarch import (
    BackendModel,
    BranchModel,
    CodeRegion,
    DEFAULT_CONSTANTS,
    FrontendModel,
    MemoryModel,
    synthesize,
)


def make_workload(**kwargs):
    defaults = dict(op_kind="X", flops=10_000, vector_fraction=0.9, uses_fma=True)
    defaults.update(kwargs)
    return OpWorkload(**defaults)


class TestSynthesize:
    def test_wider_simd_fewer_vector_instructions(self):
        w = make_workload()
        bdw = synthesize(w, BROADWELL, DEFAULT_CONSTANTS)
        clx = synthesize(w, CASCADE_LAKE, DEFAULT_CONSTANTS)
        assert clx.vector_flop_instructions < bdw.vector_flop_instructions
        assert clx.total < bdw.total  # Fig 11

    def test_vnni_reduces_fma_instructions_only(self):
        fma = make_workload(uses_fma=True)
        plain = make_workload(uses_fma=False)
        c = DEFAULT_CONSTANTS
        # Ratio of CLX/BDW vector instructions is lower for FMA ops
        # (VNNI bonus) than for plain vector ops.
        ratio_fma = (
            synthesize(fma, CASCADE_LAKE, c).vector_flop_instructions
            / synthesize(fma, BROADWELL, c).vector_flop_instructions
        )
        ratio_plain = (
            synthesize(plain, CASCADE_LAKE, c).vector_flop_instructions
            / synthesize(plain, BROADWELL, c).vector_flop_instructions
        )
        assert ratio_fma < ratio_plain

    def test_avx_fraction_tracks_vector_fraction(self):
        lo = synthesize(make_workload(vector_fraction=0.1), BROADWELL, DEFAULT_CONSTANTS)
        hi = synthesize(make_workload(vector_fraction=0.97), BROADWELL, DEFAULT_CONSTANTS)
        assert hi.avx_instructions / hi.total > lo.avx_instructions / lo.total

    def test_random_streams_cost_per_access_loads(self):
        seq = make_workload(
            streams=(MemoryStream(1 << 20, 1024, 64, SEQUENTIAL),)
        )
        rand = make_workload(
            streams=(MemoryStream(1 << 20, 1024, 64, RANDOM),)
        )
        c = DEFAULT_CONSTANTS
        assert (
            synthesize(rand, BROADWELL, c).vector_memory_instructions
            >= synthesize(seq, BROADWELL, c).vector_memory_instructions
        )

    def test_stores_counted(self):
        w = make_workload(
            streams=(MemoryStream(4096, 64, 64, SEQUENTIAL, is_write=True),)
        )
        mix = synthesize(w, BROADWELL, DEFAULT_CONSTANTS)
        assert mix.store_instructions > 0
        assert mix.load_instructions == 0


class TestBranchModel:
    def test_zero_entropy_never_mispredicts(self):
        bm = BranchModel(BROADWELL, DEFAULT_CONSTANTS)
        p = bm.profile(make_workload(branches=10_000, branch_entropy=0.0))
        assert p.mispredicts == 0

    def test_cascade_lake_mispredicts_less(self):
        w = make_workload(branches=10_000, branch_entropy=0.3)
        bdw = BranchModel(BROADWELL, DEFAULT_CONSTANTS).profile(w)
        clx = BranchModel(CASCADE_LAKE, DEFAULT_CONSTANTS).profile(w)
        assert clx.mispredicts < bdw.mispredicts  # Fig 15
        assert clx.bad_speculation_cycles < bdw.bad_speculation_cycles

    def test_rate_scales_with_entropy(self):
        bm = BranchModel(BROADWELL, DEFAULT_CONSTANTS)
        assert bm.mispredict_rate(0.4) == pytest.approx(2 * bm.mispredict_rate(0.2))

    def test_invalid_entropy_rejected(self):
        bm = BranchModel(BROADWELL, DEFAULT_CONSTANTS)
        with pytest.raises(ValueError):
            bm.mispredict_rate(1.5)


class TestBackendModel:
    def test_execution_at_least_issue_limited(self):
        bm = BackendModel(BROADWELL, DEFAULT_CONSTANTS)
        mix = synthesize(make_workload(), BROADWELL, DEFAULT_CONSTANTS)
        p = bm.profile(mix)
        assert p.execution_cycles >= p.issue_cycles
        assert p.core_bound_cycles >= 0

    def test_port_histogram_is_distribution(self):
        bm = BackendModel(BROADWELL, DEFAULT_CONSTANTS)
        mix = synthesize(make_workload(flops=1_000_000), BROADWELL, DEFAULT_CONSTANTS)
        p = bm.profile(mix)
        bm.port_histogram(p, p.execution_cycles)
        total = p.ports_0_fraction + p.ports_1_2_fraction + p.ports_3_plus_fraction
        assert total == pytest.approx(1.0)
        assert 0 <= p.avg_ports_busy <= 8

    def test_stall_cycles_dilute_port_usage(self):
        bm = BackendModel(BROADWELL, DEFAULT_CONSTANTS)
        mix = synthesize(make_workload(flops=1_000_000), BROADWELL, DEFAULT_CONSTANTS)
        busy = bm.profile(mix)
        bm.port_histogram(busy, busy.execution_cycles)
        stalled = bm.profile(mix)
        bm.port_histogram(stalled, busy.execution_cycles * 10)
        assert stalled.ports_3_plus_fraction < busy.ports_3_plus_fraction


class TestMemoryModel:
    def test_l1_resident_stream_no_stall(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        w = make_workload(streams=(MemoryStream(8 * 1024, 100, 64, SEQUENTIAL),))
        p = mm.profile(w)
        assert p.stall_cycles == 0
        assert p.dram_accesses == 0

    def test_giant_gather_hits_dram(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        w = make_workload(
            streams=(MemoryStream(4 << 30, 10_000, 128, RANDOM, 0.1, parallelism=80),)
        )
        p = mm.profile(w)
        assert p.dram_accesses > 5000
        assert p.stall_cycles > 0

    def test_more_parallel_lookups_higher_occupancy(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        def occupancy(parallelism):
            w = make_workload(
                streams=(
                    MemoryStream(4 << 30, 10_000, 128, RANDOM, 0.1,
                                 parallelism=parallelism),
                )
            )
            return mm.profile(w).dram_occupancy
        assert occupancy(120) > occupancy(80) > occupancy(1)  # Fig 14 driver

    def test_congestion_rule_threshold(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        low = make_workload(
            streams=(MemoryStream(4 << 30, 10_000, 128, RANDOM, 0.1, parallelism=1),)
        )
        high = make_workload(
            streams=(MemoryStream(4 << 30, 10_000, 128, RANDOM, 0.1, parallelism=120),)
        )
        p_low, p_high = mm.profile(low), mm.profile(high)
        assert mm.congested_cycles(p_low, 1e6) == 0.0
        assert mm.congested_cycles(p_high, 1e9) > 0.0

    def test_gather_mlp_caps_at_offcore_depth(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        s = MemoryStream(1 << 30, 1000, 128, RANDOM, parallelism=100_000)
        assert mm.gather_mlp(s) == BROADWELL.max_offcore_requests

    def test_sequential_dram_stream_bandwidth_bound(self):
        mm = MemoryModel(BROADWELL, DEFAULT_CONSTANTS)
        nbytes = 1 << 30
        w = make_workload(
            streams=(MemoryStream(nbytes, nbytes // 64, 64, SEQUENTIAL),)
        )
        p = mm.profile(w)
        bytes_per_cycle = BROADWELL.dram_bandwidth_gbps / BROADWELL.frequency_ghz
        assert p.stall_cycles >= nbytes / bytes_per_cycle * 0.9


class TestFrontendModel:
    def _region(self, name, code_bytes, instructions, entries=1, blocks=1,
                branches=0, mispredicts=0):
        return CodeRegion(
            name=name,
            code_bytes=code_bytes,
            unique_blocks=blocks,
            entries=entries,
            instructions=instructions,
            uops=instructions * 1.05,
            branches=branches,
            mispredicts=mispredicts,
        )

    def test_small_code_is_dsb_resident(self):
        fm = FrontendModel(BROADWELL, DEFAULT_CONSTANTS)
        profiles = fm.analyze([self._region("hot", 2048, 1_000_000)])
        assert profiles["hot"].dsb_resident
        assert profiles["hot"].icache_misses == 0

    def test_huge_code_misses_icache(self):
        fm = FrontendModel(BROADWELL, DEFAULT_CONSTANTS)
        profiles = fm.analyze(
            [self._region("din", 240_000, 1_000_000, entries=10_000, blocks=750)]
        )
        p = profiles["din"]
        assert not p.l1i_resident
        assert p.icache_misses > 0
        assert p.latency_cycles > 0

    def test_dsb_residency_is_per_region(self):
        """The DSB swaps between operators: any loop that fits the uop
        cache decodes from it, regardless of other regions; only a
        monolithic unrolled region (DIN) exceeds it and uses MITE."""
        fm = FrontendModel(BROADWELL, DEFAULT_CONSTANTS)
        regions = [
            self._region("loop_a", 4096, 10_000_000),
            self._region("loop_b", 4096, 1_000),
            self._region("unrolled", 240_000, 5_000_000, blocks=750),
        ]
        profiles = fm.analyze(regions)
        assert profiles["loop_a"].dsb_resident
        assert profiles["loop_b"].dsb_resident
        assert not profiles["unrolled"].dsb_resident
        assert profiles["unrolled"].mite_uops > 0

    def test_branchy_resident_code_dsb_limited(self):
        fm = FrontendModel(BROADWELL, DEFAULT_CONSTANTS)
        profiles = fm.analyze(
            [self._region("sls", 2048, 100_000, branches=20_000, mispredicts=500)]
        )
        p = profiles["sls"]
        assert p.dsb_limited_cycles > 0
        assert p.mite_limited_cycles == 0

    def test_dispatch_instructions_scale_with_entries(self):
        fm = FrontendModel(BROADWELL, DEFAULT_CONSTANTS)
        p1 = fm.analyze([self._region("a", 2048, 1000, entries=1)])["a"]
        p100 = fm.analyze([self._region("a", 2048, 1000, entries=100)])["a"]
        assert p100.dispatch_instructions == pytest.approx(
            100 * p1.dispatch_instructions
        )

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=15)
    def test_stall_cycles_never_negative(self, n_regions):
        fm = FrontendModel(CASCADE_LAKE, DEFAULT_CONSTANTS)
        rng = np.random.default_rng(n_regions)
        regions = [
            self._region(
                f"r{i}",
                int(rng.integers(128, 100_000)),
                int(rng.integers(100, 10_000_000)),
                entries=int(rng.integers(1, 1000)),
                branches=int(rng.integers(0, 10_000)),
                mispredicts=int(rng.integers(0, 100)),
            )
            for i in range(n_regions)
        ]
        for p in fm.analyze(regions).values():
            assert p.latency_cycles >= 0
            assert p.dsb_limited_cycles >= 0
            assert p.mite_limited_cycles >= 0
