"""Tests for the DLRM sensitivity-study variants."""

import pytest

from repro.core import collect_report
from repro.graph import execute
from repro.models import (
    dlrm_variant,
    embedding_dim_sweep,
    fc_width_sweep,
    lookup_sweep,
    make_rm1,
    table_count_sweep,
)
from repro.workloads import QueryGenerator


@pytest.fixture(scope="module")
def rm1():
    return make_rm1()


class TestVariantConstruction:
    def test_override_applies(self, rm1):
        v = dlrm_variant(rm1, "x", lookups_per_table=10)
        assert v.config.lookups_per_table == 10
        assert v.config.num_tables == rm1.config.num_tables
        assert v.name == "rm1_x"

    def test_base_unchanged(self, rm1):
        dlrm_variant(rm1, "x", num_tables=2)
        assert rm1.config.num_tables == 8

    def test_variants_execute(self, rm1):
        v = dlrm_variant(rm1, "tiny", num_tables=2, lookups_per_table=4)
        feeds = QueryGenerator(v).generate(2)
        (out,) = execute(v.build_graph(2), feeds).values()
        assert out.shape == (2, 1)

    def test_lookup_sweep_keys(self, rm1):
        sweep = lookup_sweep(rm1, [1, 20, 80])
        assert set(sweep) == {1, 20, 80}
        for n, model in sweep.items():
            assert model.config.lookups_per_table == n

    def test_fc_width_sweep_respects_embedding_contract(self, rm1):
        for model in fc_width_sweep(rm1, [0.5, 2.0]).values():
            assert model.config.bottom_mlp[-1] == model.config.embedding_dim

    def test_embedding_dim_sweep(self, rm1):
        sweep = embedding_dim_sweep(rm1, [16, 64])
        assert sweep[16].config.embedding_dim == 16
        assert sweep[16].config.bottom_mlp[-1] == 16


class TestSensitivityCausality:
    """Each feature axis must *cause* its bottleneck (the Fig 16 story)."""

    def test_more_lookups_more_memory_bound(self, rm1):
        sweep = lookup_sweep(rm1, [1, 120])
        low = collect_report(sweep[1], "broadwell", 16)
        high = collect_report(sweep[120], "broadwell", 16)
        assert high.topdown.memory_bound > low.topdown.memory_bound
        assert high.branch_mpki > low.branch_mpki

    def test_more_lookups_more_congestion(self, rm1):
        sweep = lookup_sweep(rm1, [8, 160])
        low = collect_report(sweep[8], "broadwell", 16)
        high = collect_report(sweep[160], "broadwell", 16)
        assert high.dram_congested_fraction > low.dram_congested_fraction

    def test_wider_fc_more_core_bound(self, rm1):
        sweep = fc_width_sweep(rm1, [0.5, 8.0])
        narrow = collect_report(sweep[0.5], "broadwell", 16)
        wide = collect_report(sweep[8.0], "broadwell", 16)
        assert wide.topdown.core_bound > narrow.topdown.core_bound
        assert wide.avx_fraction > narrow.avx_fraction

    def test_more_tables_more_gather_time(self, rm1):
        from repro.runtime import InferenceSession

        sweep = table_count_sweep(rm1, [2, 32])
        few = InferenceSession(sweep[2], "broadwell").profile(64)
        many = InferenceSession(sweep[32], "broadwell").profile(64)
        assert (
            many.op_time_by_kind["SparseLengthsSum"]
            > 4 * few.op_time_by_kind["SparseLengthsSum"]
        )
