"""Tests for operator workload descriptors (the analytical half)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import TensorSpec
from repro.ops import (
    FC,
    GRU,
    Concat,
    EmbeddingTable,
    Gather,
    LocalActivationAttention,
    MemoryStream,
    OpWorkload,
    Relu,
    SparseLengthsSum,
    merge_workloads,
)
from repro.ops.workload import RANDOM, SEQUENTIAL


class TestMemoryStream:
    def test_total_bytes(self):
        s = MemoryStream(1024, 10, 64)
        assert s.total_bytes == 640

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            MemoryStream(10, 1, 4, pattern="zigzag")

    def test_invalid_locality_rejected(self):
        with pytest.raises(ValueError):
            MemoryStream(10, 1, 4, locality=1.5)

    def test_parallelism_validated(self):
        with pytest.raises(ValueError):
            MemoryStream(10, 1, 4, parallelism=0)

    def test_scaled(self):
        s = MemoryStream(1024, 10, 64).scaled(2.5)
        assert s.accesses == 25
        assert s.footprint_bytes == 1024


class TestOpWorkload:
    def test_vector_scalar_split(self):
        w = OpWorkload(op_kind="X", flops=100, vector_fraction=0.75)
        assert w.vector_flops == 75
        assert w.scalar_flops == 25

    def test_arithmetic_intensity(self):
        w = OpWorkload(
            op_kind="X",
            flops=640,
            streams=(MemoryStream(64, 1, 64), MemoryStream(64, 1, 64, is_write=True)),
        )
        assert w.arithmetic_intensity == 5.0

    def test_bytes_read_and_written(self):
        w = OpWorkload(
            op_kind="X",
            streams=(
                MemoryStream(100, 2, 32),
                MemoryStream(100, 3, 32, is_write=True),
            ),
        )
        assert w.bytes_read == 64
        assert w.bytes_written == 96

    def test_random_access_bytes(self):
        w = OpWorkload(
            op_kind="X",
            streams=(
                MemoryStream(100, 2, 32, pattern=RANDOM),
                MemoryStream(100, 2, 32),
            ),
        )
        assert w.random_access_bytes == 64

    def test_effective_code_entries_defaults_to_kernels(self):
        assert OpWorkload(op_kind="X", kernel_launches=7).effective_code_entries == 7
        assert (
            OpWorkload(op_kind="X", kernel_launches=7, code_entries=99)
            .effective_code_entries
            == 99
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OpWorkload(op_kind="X", vector_fraction=2.0)
        with pytest.raises(ValueError):
            OpWorkload(op_kind="X", branch_entropy=-0.1)
        with pytest.raises(ValueError):
            OpWorkload(op_kind="X", code_entries=0)

    def test_merge_adds_and_averages(self):
        a = OpWorkload(op_kind="A", flops=100, vector_fraction=1.0, branches=10,
                       branch_entropy=0.2, code_bytes=100, kernel_launches=2)
        b = OpWorkload(op_kind="B", flops=300, vector_fraction=0.0, branches=30,
                       branch_entropy=0.6, code_bytes=200, kernel_launches=3)
        merged = merge_workloads("M", [a, b])
        assert merged.flops == 400
        assert merged.vector_fraction == pytest.approx(0.25)
        assert merged.code_bytes == 300
        assert merged.kernel_launches == 5
        # Branch entropy is branch-weighted.
        assert merged.branch_entropy == pytest.approx((10 * 0.2 + 30 * 0.6) / 40)

    def test_merge_empty(self):
        assert merge_workloads("M", []).flops == 0


class TestOperatorDescriptors:
    def test_fc_flops_formula(self):
        w = FC(128, 64, "t").workload([TensorSpec((32, 128))])
        assert w.flops == 2 * 32 * 128 * 64
        assert w.uses_fma
        assert w.vector_fraction > 0.9

    def test_fc_flops_scale_with_batch(self):
        op = FC(128, 64, "t")
        w1 = op.workload([TensorSpec((1, 128))])
        w64 = op.workload([TensorSpec((64, 128))])
        assert w64.flops == 64 * w1.flops

    def test_sls_gather_stream_is_random_and_nominal(self):
        table = EmbeddingTable(1_000_000, 32, "t", alloc_rows_cap=64)
        w = SparseLengthsSum(table).workload([TensorSpec((16, 80), "int64")])
        gather = [s for s in w.streams if s.pattern == RANDOM]
        assert len(gather) == 1
        assert gather[0].footprint_bytes == 1_000_000 * 32 * 4  # nominal!
        assert gather[0].accesses == 16 * 80
        assert gather[0].parallelism == 80

    def test_sls_branchier_than_fc(self):
        table = EmbeddingTable(1000, 32, "t")
        sls = SparseLengthsSum(table).workload([TensorSpec((16, 80), "int64")])
        fc = FC(128, 64, "t").workload([TensorSpec((16, 128))])
        assert sls.branch_entropy > fc.branch_entropy
        assert sls.branches / max(sls.flops, 1) > fc.branches / max(fc.flops, 1)

    def test_din_attention_unique_blocks_scale_with_lookups(self):
        att = LocalActivationAttention(64, 36, "t")
        w = att.workload([TensorSpec((16, 750, 64)), TensorSpec((16, 64))])
        assert w.unique_code_blocks == 750
        assert w.code_entries == 16 * 750
        assert w.kernel_launches == 3 * 750

    def test_gru_sequential_steps(self):
        w = GRU(64, 64, seed_key="t").workload([TensorSpec((16, 50, 64))])
        assert w.sequential_steps == 50
        assert w.kernel_launches == 100
        assert w.uses_fma

    def test_concat_launches_per_input(self):
        specs = [TensorSpec((4, 8)) for _ in range(5)]
        w = Concat(axis=1).workload(specs)
        assert w.kernel_launches == 5
        assert w.flops == 0
        assert w.bytes_written == 4 * 40 * 4

    def test_relu_bandwidth_bound(self):
        w = Relu().workload([TensorSpec((1024, 1024))])
        assert w.arithmetic_intensity < 1.0

    def test_gather_writes_unpooled_output(self):
        table = EmbeddingTable(1000, 8, "t")
        w = Gather(table).workload([TensorSpec((4, 10), "int64")])
        assert w.bytes_written >= 4 * 10 * 8 * 4


@given(
    batch=st.integers(min_value=1, max_value=512),
    lookups=st.integers(min_value=1, max_value=256),
)
def test_sls_workload_scales_linearly(batch, lookups):
    table = EmbeddingTable(10_000, 16, "prop")
    w = SparseLengthsSum(table).workload([TensorSpec((batch, lookups), "int64")])
    assert w.flops == batch * lookups * 16
    assert w.branches >= batch * lookups
